// Command benchcheck guards the committed benchmark artifacts against
// drift. BENCH_E5.json and BENCH_E6.json record the deterministic results
// of the E5 (Section 7 bug-finding matrix) and E6 (§6.1 planner
// efficiency) experiments; benchcheck recomputes both from scratch —
// through the same internal/bench code path the benchmarks use — and
// fails with a field-level diff when a committed artifact disagrees with
// the fresh run. A behaviour change that shifts a detection, an execution
// count, or a pruning decision therefore breaks this check until the
// artifacts are regenerated (and the diff reviewed) with -write.
//
// Usage:
//
//	benchcheck [-e5 BENCH_E5.json] [-e6 BENCH_E6.json] [-parallel N] [-write]
//
// Exit codes: 0 artifacts agree, 1 drift detected or an artifact is
// missing/unreadable, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	e5Path := fs.String("e5", "BENCH_E5.json", "committed E5 artifact path")
	e6Path := fs.String("e6", "BENCH_E6.json", "committed E6 artifact path")
	parallel := fs.Int("parallel", 4, "worker-pool width for the recomputation (does not affect results)")
	write := fs.Bool("write", false, "regenerate the artifacts instead of checking them")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *write {
		// Default parameters match bench_test.go (recorded in the files).
		if err := regenerate(*e5Path, *e6Path, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			return 1
		}
		return 0
	}

	drift := false
	drift = checkE5(*e5Path, *parallel) || drift
	drift = checkE6(*e6Path, *parallel) || drift
	if drift {
		fmt.Fprintln(os.Stderr, "benchcheck: committed artifacts disagree with a fresh run; regenerate with -write and review the diff")
		return 1
	}
	fmt.Println("benchcheck: committed artifacts match the fresh run")
	return 0
}

func regenerate(e5Path, e6Path string, workers int) error {
	fmt.Printf("benchcheck: computing E5 (max %d executions)...\n", 400)
	if err := bench.WriteFile(e5Path, bench.ComputeE5(400, workers)); err != nil {
		return err
	}
	fmt.Printf("benchcheck: computing E6 (max %d executions)...\n", 800)
	if err := bench.WriteFile(e6Path, bench.ComputeE6(800, workers)); err != nil {
		return err
	}
	fmt.Printf("benchcheck: wrote %s and %s\n", e5Path, e6Path)
	return nil
}

func checkE5(path string, workers int) (drift bool) {
	committed, err := bench.ReadE5(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return true
	}
	fmt.Printf("benchcheck: recomputing E5 (max %d executions)...\n", committed.MaxExecutions)
	fresh := bench.ComputeE5(committed.MaxExecutions, workers)
	return report(path, bench.Diff(committed, fresh))
}

func checkE6(path string, workers int) (drift bool) {
	committed, err := bench.ReadE6(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return true
	}
	fmt.Printf("benchcheck: recomputing E6 (max %d executions)...\n", committed.MaxExecutions)
	fresh := bench.ComputeE6(committed.MaxExecutions, workers)
	return report(path, bench.Diff(committed, fresh))
}

func report(path string, diffs []string) bool {
	if len(diffs) == 0 {
		fmt.Printf("benchcheck: %s agrees with the fresh run\n", path)
		return false
	}
	fmt.Fprintf(os.Stderr, "benchcheck: %s drifted (%d differences):\n", path, len(diffs))
	for _, d := range diffs {
		fmt.Fprintf(os.Stderr, "  %s\n", d)
	}
	return true
}
