package store

import (
	"errors"
	"testing"

	"repro/internal/raftlite"
	"repro/internal/sim"
)

type replFixture struct {
	w        *sim.World
	replicas []*ReplicaServer
	cl       *testClient
}

func newReplFixture(t *testing.T, n int) *replFixture {
	t.Helper()
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond, Jitter: sim.Millisecond / 2})
	f := &replFixture{w: w, replicas: NewReplicaGroup(w, n, raftlite.DefaultConfig())}
	f.cl = newTestClient(w, "client")
	// Let the group elect a leader.
	w.Kernel().RunFor(2 * sim.Second)
	if f.leader() == nil {
		t.Fatal("no leader after 2s")
	}
	return f
}

func (f *replFixture) leader() *ReplicaServer {
	for _, r := range f.replicas {
		if r.Raft().Role() == raftlite.Leader && !f.w.Crashed(r.ID()) {
			return r
		}
	}
	return nil
}

// write issues a Put at the current leader, following redirects.
func (f *replFixture) write(t *testing.T, key, value string) int64 {
	t.Helper()
	for attempt := 0; attempt < 10; attempt++ {
		l := f.leader()
		if l == nil {
			f.w.Kernel().RunFor(500 * sim.Millisecond)
			continue
		}
		resp, err := f.cl.call(l.ID(), MethodPut, &PutRequest{Key: key, Value: []byte(value)})
		if err == nil {
			return resp.(*PutResponse).Revision
		}
		if _, notLeader := IsNotLeader(err); notLeader || errors.Is(err, sim.ErrRPCTimeout) {
			f.w.Kernel().RunFor(500 * sim.Millisecond)
			continue
		}
		t.Fatalf("write %s: %v", key, err)
	}
	t.Fatalf("write %s: no leader found", key)
	return 0
}

func TestReplicatedWriteVisibleEverywhere(t *testing.T) {
	f := newReplFixture(t, 3)
	f.write(t, "/a", "1")
	f.w.Kernel().RunFor(sim.Second)
	for _, r := range f.replicas {
		kv, _, ok := r.Store().Get("/a")
		if !ok || string(kv.Value) != "1" {
			t.Fatalf("%s missing /a", r.ID())
		}
	}
}

func TestFollowerWriteRedirects(t *testing.T) {
	f := newReplFixture(t, 3)
	l := f.leader()
	var follower *ReplicaServer
	for _, r := range f.replicas {
		if r.ID() != l.ID() {
			follower = r
			break
		}
	}
	_, err := f.cl.call(follower.ID(), MethodPut, &PutRequest{Key: "/x", Value: []byte("1")})
	hint, notLeader := IsNotLeader(err)
	if !notLeader {
		t.Fatalf("follower accepted write: %v", err)
	}
	if hint != l.ID() {
		t.Fatalf("leader hint = %q, want %q", hint, l.ID())
	}
}

func TestFollowerReadsCanBeStale(t *testing.T) {
	f := newReplFixture(t, 3)
	l := f.leader()
	var follower *ReplicaServer
	for _, r := range f.replicas {
		if r.ID() != l.ID() {
			follower = r
			break
		}
	}
	// Cut the follower off from the rest, then write.
	for _, r := range f.replicas {
		if r.ID() != follower.ID() {
			f.w.Network().Partition(follower.ID(), r.ID())
		}
	}
	f.write(t, "/fresh", "1")
	f.w.Kernel().RunFor(sim.Second)

	// The follower serves a read that misses the committed write: a stale
	// read, the store-level partial history.
	resp, err := f.cl.call(follower.ID(), MethodGet, &GetRequest{Key: "/fresh"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*GetResponse).Found {
		t.Fatal("partitioned follower saw the fresh write")
	}
	// Heal; the follower converges.
	for _, r := range f.replicas {
		if r.ID() != follower.ID() {
			f.w.Network().Heal(follower.ID(), r.ID())
		}
	}
	f.w.Kernel().RunFor(2 * sim.Second)
	resp, err = f.cl.call(follower.ID(), MethodGet, &GetRequest{Key: "/fresh"})
	if err != nil || !resp.(*GetResponse).Found {
		t.Fatalf("healed follower still stale: %v", err)
	}
}

func TestLeaderFailoverWritesContinue(t *testing.T) {
	f := newReplFixture(t, 3)
	f.write(t, "/a", "1")
	l := f.leader()
	if err := f.w.Crash(l.ID()); err != nil {
		t.Fatal(err)
	}
	f.w.Kernel().RunFor(2 * sim.Second)
	f.write(t, "/b", "2")
	f.w.Kernel().RunFor(sim.Second)

	// Restart the old leader: it rebuilds its store from the raft log and
	// catches up, including the write it missed.
	if err := f.w.Restart(l.ID()); err != nil {
		t.Fatal(err)
	}
	f.w.Kernel().RunFor(3 * sim.Second)
	for _, key := range []string{"/a", "/b"} {
		kv, _, ok := l.Store().Get(key)
		if !ok {
			t.Fatalf("recovered replica missing %s", key)
		}
		_ = kv
	}
}

func TestReplicatedHistoriesIdentical(t *testing.T) {
	f := newReplFixture(t, 3)
	for i := 0; i < 6; i++ {
		f.write(t, "/k", string(rune('a'+i)))
	}
	f.w.Kernel().RunFor(sim.Second)
	ref := f.replicas[0].Store().History().Events()
	if len(ref) != 6 {
		t.Fatalf("leader history = %d events", len(ref))
	}
	for _, r := range f.replicas[1:] {
		got := r.Store().History().Events()
		if len(got) != len(ref) {
			t.Fatalf("%s history length %d != %d", r.ID(), len(got), len(ref))
		}
		for i := range ref {
			if !ref[i].Equal(got[i]) {
				t.Fatalf("%s event %d differs", r.ID(), i)
			}
		}
	}
}

func TestReplicatedTxnCAS(t *testing.T) {
	f := newReplFixture(t, 3)
	rev := f.write(t, "/lock", "a")
	l := f.leader()
	resp, err := f.cl.call(l.ID(), MethodTxn, &TxnRequest{
		Guards:    []Cmp{{Key: "/lock", Target: CmpModRevision, IntVal: rev}},
		OnSuccess: []Op{{Type: OpPut, Key: "/lock", Value: []byte("b")}},
	})
	if err != nil || !resp.(*TxnResponse).Succeeded {
		t.Fatalf("first CAS: %v %+v", err, resp)
	}
	resp, err = f.cl.call(l.ID(), MethodTxn, &TxnRequest{
		Guards:    []Cmp{{Key: "/lock", Target: CmpModRevision, IntVal: rev}},
		OnSuccess: []Op{{Type: OpPut, Key: "/lock", Value: []byte("c")}},
	})
	if err != nil || resp.(*TxnResponse).Succeeded {
		t.Fatalf("stale CAS: %v %+v", err, resp)
	}
}
