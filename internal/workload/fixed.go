package workload

import (
	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/operators/cassandra"
)

// Fixed returns a copy of the target whose cluster builder applies every
// component fix (safe kubelet restart sync, scheduler cache eviction,
// volume release on absent owner, all operator fixes). Campaigns against a
// fixed target demonstrate that the perturbations which break the stock
// components no longer violate the oracles.
func Fixed(t core.Target) core.Target {
	orig := t.Build
	t.Build = func(seed int64) *infra.Cluster {
		opts := orig(seed).Opts
		opts.KubeletSafeRestart = true
		opts.SchedulerEvictFix = true
		opts.VolumeControllerFix = true
		if opts.Cassandra != nil {
			cass := *opts.Cassandra
			cass.Fixes = cassandra.AllFixed()
			opts.Cassandra = &cass
		}
		return infra.New(opts)
	}
	return t
}
