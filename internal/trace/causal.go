package trace

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// This file implements the causality analysis the paper's Section 7 calls
// for: "recording causal relationships between events can be useful. For
// example, perturbing events that are causally related to a component's
// action are likely to trigger bugs."
//
// The graph is built from the happens-before structure the trace already
// contains: a commit happens-before every delivery carrying its revision,
// and a delivery to component C happens-before every later write by C
// (bounded by a reaction window — controllers act on fresh observations).

// CausalLink ties one observed event to one component action it plausibly
// caused.
type CausalLink struct {
	Delivery Delivery
	Write    Write
	// Gap is the virtual time between observation and action; shorter gaps
	// mean stronger causal suspicion.
	Gap sim.Duration
}

// CausalGraph indexes deliveries and writes for causal queries.
type CausalGraph struct {
	trace *Trace
	// ReactionWindow bounds how long after a delivery a write may still be
	// attributed to it.
	ReactionWindow sim.Duration
}

// NewCausalGraph builds a graph over the trace with the given reaction
// window (0 = 500ms, a generous bound for the simulated controllers).
func NewCausalGraph(t *Trace, window sim.Duration) *CausalGraph {
	if window <= 0 {
		window = 500 * sim.Millisecond
	}
	return &CausalGraph{trace: t, ReactionWindow: window}
}

// CausesOf returns the deliveries that plausibly caused a write: events
// delivered to the writing component within the reaction window before the
// write, newest first.
func (g *CausalGraph) CausesOf(w Write) []CausalLink {
	var out []CausalLink
	for _, d := range g.trace.Deliveries {
		if d.To != w.From || d.Time > w.Time {
			continue
		}
		gap := w.Time.Sub(d.Time)
		if gap > g.ReactionWindow {
			continue
		}
		out = append(out, CausalLink{Delivery: d, Write: w, Gap: gap})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Gap < out[j].Gap })
	return out
}

// EffectsOf returns the writes plausibly caused by deliveries of the given
// revision: for every component that observed rev, its writes within the
// reaction window after the observation.
func (g *CausalGraph) EffectsOf(rev int64) []CausalLink {
	var out []CausalLink
	for _, d := range g.trace.Deliveries {
		if d.Revision != rev {
			continue
		}
		for _, w := range g.trace.Writes {
			if w.From != d.To || w.Time < d.Time {
				continue
			}
			if w.Time.Sub(d.Time) > g.ReactionWindow {
				continue
			}
			out = append(out, CausalLink{Delivery: d, Write: w, Gap: w.Time.Sub(d.Time)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gap != out[j].Gap {
			return out[i].Gap < out[j].Gap
		}
		return out[i].Write.Time < out[j].Write.Time
	})
	return out
}

// HotDeliveries ranks deliveries by how many component writes they
// plausibly caused — the planner's highest-value perturbation targets. Ties
// break toward deletion-adjacent events, then earlier time.
func (g *CausalGraph) HotDeliveries(limit int) []Delivery {
	type scored struct {
		d     Delivery
		score int
	}
	var all []scored
	for _, d := range g.trace.Deliveries {
		n := 0
		for _, w := range g.trace.Writes {
			if w.From == d.To && w.Time >= d.Time && w.Time.Sub(d.Time) <= g.ReactionWindow {
				n++
			}
		}
		all = append(all, scored{d: d, score: n})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		si := all[i].d.Terminating || all[i].d.EventType == "DELETED"
		sj := all[j].d.Terminating || all[j].d.EventType == "DELETED"
		if si != sj {
			return si
		}
		return all[i].d.Time < all[j].d.Time
	})
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	out := make([]Delivery, len(all))
	for i, s := range all {
		out[i] = s.d
	}
	return out
}

// Score counts the writes plausibly caused by one delivery: actions by the
// receiving component within the reaction window. The planner uses it to
// order perturbation candidates — dropping a high-score delivery is most
// likely to flip a decision.
func (g *CausalGraph) Score(d Delivery) int {
	n := 0
	for _, w := range g.trace.Writes {
		if w.From == d.To && w.Time >= d.Time && w.Time.Sub(d.Time) <= g.ReactionWindow {
			n++
		}
	}
	return n
}

// ChainsThrough returns the commit→delivery→write chains for one object:
// how changes to (kind, name) propagated into component actions.
func (g *CausalGraph) ChainsThrough(kind cluster.Kind, name string) []CausalLink {
	var out []CausalLink
	for _, d := range g.trace.Deliveries {
		if d.Kind != kind || d.Name != name {
			continue
		}
		for _, w := range g.trace.Writes {
			if w.From != d.To || w.Time < d.Time || w.Time.Sub(d.Time) > g.ReactionWindow {
				continue
			}
			out = append(out, CausalLink{Delivery: d, Write: w, Gap: w.Time.Sub(d.Time)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Delivery.Time < out[j].Delivery.Time })
	return out
}
