package campaign

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// grayPlanner returns the paper's planner restricted to its gray-failure
// family: slow links, flaky links, and compaction pressure. Gray plans are
// the adversarial case for prefix checkpointing — flaky and slow links
// consume kernel RNG inside the perturbation window, so a fork that
// mis-replays the RNG frontier or restores a link in the wrong quality
// state produces a visibly different degraded schedule.
func grayPlanner() core.Strategy {
	p := core.NewPlanner()
	p.DisableGaps = true
	p.DisableTimeTravel = true
	p.DisableStaleness = true
	return p
}

// TestChaosSoakSnapshotGrayFailures soaks the fork-at-checkpoint path
// under gray-failure plans across four seeds: every campaign is run twice,
// with full replay and with prefix checkpointing, and the two must agree
// byte-for-byte on canonicalized artifacts, telemetry, and — asserted
// separately because it is the headline claim — the failure buckets. Run
// under -race in CI (the chaos soak step), this doubles as a concurrency
// soak of the snapshot substrate.
func TestChaosSoakSnapshotGrayFailures(t *testing.T) {
	targets := []core.Target{workload.Target59848(), workload.Target56261()}
	for _, target := range targets {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			if testing.Short() && target.Name == "k8s-56261" {
				t.Skip("short mode: one gray soak target is enough")
			}
			cfg := Config{
				Workers:       2,
				Seeds:         []int64{1, 2, 3, 5},
				MaxExecutions: 12,
				Collect:       true,
				KeepGoing:     true,
			}
			off, on := runBoth(t, target, grayPlanner, cfg)
			cfgOff, cfgOn := cfg, cfg
			cfgOff.Snapshot, cfgOn.Snapshot = false, true
			assertEquivalent(t, off, on, cfgOff, cfgOn)

			// The headline assertion spelled out: identical failure buckets.
			if !reflect.DeepEqual(off.Buckets, on.Buckets) {
				t.Fatalf("failure buckets diverged under forking\n off: %+v\n  on: %+v", off.Buckets, on.Buckets)
			}
			// A soak that crashed or hung executions proves nothing.
			if on.Stats.FailedExecutions != 0 || on.Stats.HungExecutions != 0 {
				t.Fatalf("gray soak had broken executions under forking: %+v", on.Stats)
			}
			if off.Campaign.Executions == 0 {
				t.Fatal("gray soak executed nothing; the equivalence is vacuous")
			}
		})
	}
}

// TestGrayFailureHealthyLinksZeroRNGDraws pins the invariant prefix
// checkpointing leans on: only degraded links consume kernel RNG. A
// checkpoint records the RNG draw count at capture time; if healthy
// traffic drew randomness, that count would depend on the volume of
// unrelated messages and forked executions could desynchronize from full
// replays. The contract: with base jitter zero, a healthy network delivers
// arbitrary traffic with zero draws; degrading a link starts the draws;
// clearing it stops them at exactly the degraded-window total.
func TestGrayFailureHealthyLinksZeroRNGDraws(t *testing.T) {
	k := sim.NewKernel(42)
	n := sim.NewNetwork(k, sim.Millisecond, 0) // jitter 0: the healthy path must be RNG-free

	delivered := 0
	sink := sim.HandlerFunc(func(m *sim.Message) { delivered++ })
	n.Register("a", sink)
	n.Register("b", sink)

	burst := func(count int) {
		for i := 0; i < count; i++ {
			n.Send("a", "b", "rpc", i)
			n.Send("b", "a", "rpc", i)
		}
		k.RunFor(10 * sim.Millisecond)
	}

	// Phase 1: healthy links, heavy traffic, zero draws.
	burst(200)
	if got := k.RNGDraws(); got != 0 {
		t.Fatalf("healthy links drew %d RNG values; the checkpoint RNG frontier would depend on traffic volume", got)
	}
	if delivered == 0 {
		t.Fatal("no messages delivered; the zero-draw observation is vacuous")
	}

	// Phase 2: degrade the link; the gray machinery must start drawing.
	n.SetLinkQuality("a", "b", sim.LinkQuality{
		ExtraJitter: sim.Millisecond,
		DropPercent: 30,
		DupPercent:  10,
	})
	burst(50)
	grayDraws := k.RNGDraws()
	if grayDraws == 0 {
		t.Fatal("degraded link drew no RNG: drop/dup/jitter decisions are not randomized")
	}

	// Phase 3: heal the link; the draw counter must freeze.
	n.ClearLinkQuality("a", "b")
	burst(200)
	if got := k.RNGDraws(); got != grayDraws {
		t.Fatalf("healed links kept drawing RNG: %d draws after heal, %d during the gray window", got, grayDraws)
	}
}
