package campaign

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// panicPlan is a hostile plan: it schedules a panic inside the kernel
// loop, mid-execution. The worker guard must convert it into a Failed
// record instead of taking the whole pool down.
type panicPlan struct{}

func (p panicPlan) ID() string       { return "test/panic" }
func (p panicPlan) Describe() string { return "inject a panic 500ms into the execution" }
func (p panicPlan) Apply(c *infra.Cluster) {
	c.World.Kernel().Schedule(500*sim.Millisecond, func() {
		panic("injected fault: deliberate test panic")
	})
}

// livelockPlan is a pathological plan: a zero-delay self-reschedule loop
// that stalls virtual time forever. The event-budget watchdog must flag
// the execution Hung instead of spinning until the test times out.
type livelockPlan struct{}

func (p livelockPlan) ID() string       { return "test/livelock" }
func (p livelockPlan) Describe() string { return "zero-delay reschedule loop (stalls virtual time)" }
func (p livelockPlan) Apply(c *infra.Cluster) {
	k := c.World.Kernel()
	var spin func()
	spin = func() { k.Schedule(0, spin) }
	k.Schedule(0, spin)
}

// spliceStrategy wraps an inner strategy and splices one extra plan into
// its (optionally truncated) plan list at a fixed index, so tests can put
// a hostile plan in the middle of an otherwise healthy campaign.
type spliceStrategy struct {
	inner core.Strategy
	at    int
	plan  core.Plan
	max   int
}

func (s spliceStrategy) Name() string { return s.inner.Name() + "+hostile" }
func (s spliceStrategy) Plans(t core.Target, ref *trace.Trace) []core.Plan {
	plans := s.inner.Plans(t, ref)
	if s.max > 0 && len(plans) > s.max {
		plans = plans[:s.max]
	}
	at := s.at
	if at > len(plans) {
		at = len(plans)
	}
	out := make([]core.Plan, 0, len(plans)+1)
	out = append(out, plans[:at]...)
	out = append(out, s.plan)
	out = append(out, plans[at:]...)
	return out
}

// normalize is the shared canonicalization helper (canonical.go): it
// zeroes the wall-clock measurements and the worker-count config echo so
// whole Results can be compared across worker counts with
// reflect.DeepEqual.
func normalize(res Result) Result { return Canonicalize(res) }

// TestPanicBecomesFailedRecord is acceptance criterion 3: a worker panic
// injected mid-campaign yields a Failed execution record carrying the
// plan ID while every remaining plan still executes, and the campaign's
// deterministic result stays byte-identical across worker counts.
func TestPanicBecomesFailedRecord(t *testing.T) {
	target := workload.Target56261()
	mkStrategy := func() core.Strategy {
		return spliceStrategy{inner: core.NewPlanner(), at: 3, plan: panicPlan{}, max: 9}
	}
	mkConfig := func(workers int) Config {
		return Config{Workers: workers, MaxExecutions: 10, KeepGoing: true, Collect: true}
	}

	base := New(mkConfig(1)).Run(target, mkStrategy())

	// The panic became a record, not a crash.
	if base.Stats.FailedExecutions != 1 {
		t.Fatalf("FailedExecutions = %d, want 1 (stats: %+v)", base.Stats.FailedExecutions, base.Stats)
	}
	if base.Stats.HungExecutions != 0 {
		t.Fatalf("HungExecutions = %d, want 0", base.Stats.HungExecutions)
	}
	if len(base.Failures) != 1 {
		t.Fatalf("got %d failure records, want 1: %+v", len(base.Failures), base.Failures)
	}
	f := base.Failures[0]
	if f.Kind != "panic" {
		t.Fatalf("failure kind = %q, want \"panic\"", f.Kind)
	}
	if f.Plan != (panicPlan{}).ID() || f.Index != 3 {
		t.Fatalf("failure identifies plan %q at index %d, want %q at 3", f.Plan, f.Index, (panicPlan{}).ID())
	}
	if !strings.Contains(f.Detail, "injected fault") || !strings.Contains(f.Detail, (panicPlan{}).ID()) {
		t.Fatalf("failure detail must carry the panic value and plan ID:\n%s", f.Detail)
	}
	// The sanitized stack must not carry worker-dependent noise.
	for _, forbidden := range []string{"goroutine ", "+0x"} {
		if strings.Contains(f.Detail, forbidden) {
			t.Fatalf("failure detail contains non-deterministic stack element %q:\n%s", forbidden, f.Detail)
		}
	}

	// Every remaining plan completed: reference + 9 planner plans + the
	// hostile plan, all present in the collected outcomes.
	if want := 9 + 1 + 1; len(base.Outcomes) != want {
		t.Fatalf("collected %d outcomes, want %d (remaining plans must complete)", len(base.Outcomes), want)
	}
	var failedOutcomes, healthyOutcomes int
	for _, out := range base.Outcomes {
		if out.Failed {
			failedOutcomes++
			if out.Plan != (panicPlan{}).ID() {
				t.Fatalf("failed outcome names plan %q, want %q", out.Plan, (panicPlan{}).ID())
			}
			if out.Signature != "" {
				t.Fatalf("failed outcome must not carry a coverage signature: %+v", out)
			}
		} else {
			healthyOutcomes++
		}
	}
	if failedOutcomes != 1 || healthyOutcomes != 10 {
		t.Fatalf("outcomes split %d failed / %d healthy, want 1 / 10", failedOutcomes, healthyOutcomes)
	}
	// The campaign still found the bug despite the hostile plan.
	if !base.Detected {
		t.Fatalf("campaign with one hostile plan must still detect 56261: %+v", base.Campaign)
	}

	// Byte-identical deterministic results — and telemetry streams — at
	// every worker count.
	var baseStream bytes.Buffer
	if err := WriteNDJSON(&baseStream, base, mkConfig(1)); err != nil {
		t.Fatalf("WriteNDJSON(workers=1): %v", err)
	}
	for _, workers := range []int{2, 4} {
		got := New(mkConfig(workers)).Run(target, mkStrategy())
		if !reflect.DeepEqual(normalize(got), normalize(base)) {
			t.Fatalf("workers=%d: result diverged from serial\n got: %+v\nwant: %+v",
				workers, normalize(got), normalize(base))
		}
		var stream bytes.Buffer
		if err := WriteNDJSON(&stream, got, mkConfig(workers)); err != nil {
			t.Fatalf("WriteNDJSON(workers=%d): %v", workers, err)
		}
		if !bytes.Equal(stream.Bytes(), baseStream.Bytes()) {
			t.Fatalf("workers=%d: telemetry stream diverged from serial", workers)
		}
	}

	// The artifact carries the failure record.
	art := BuildArtifact(base, mkConfig(1))
	if len(art.Failures) != 1 || art.Stats.FailedExecutions != 1 {
		t.Fatalf("artifact lost the failure record: %+v", art.Failures)
	}
}

// TestWatchdogFlagsLivelock verifies the event-budget watchdog: a plan
// that stalls virtual time with a zero-delay reschedule loop is flagged
// Hung (kind "watchdog"), and the campaign completes around it.
func TestWatchdogFlagsLivelock(t *testing.T) {
	target := workload.Target56261()
	strategy := spliceStrategy{inner: core.NewPlanner(), at: 1, plan: livelockPlan{}, max: 4}
	cfg := Config{
		Workers:       2,
		MaxExecutions: 5,
		KeepGoing:     true,
		Collect:       true,
		EventBudget:   50_000,
	}
	res := New(cfg).Run(target, strategy)

	if res.Stats.HungExecutions != 1 {
		t.Fatalf("HungExecutions = %d, want 1 (stats: %+v)", res.Stats.HungExecutions, res.Stats)
	}
	if res.Stats.FailedExecutions != 0 {
		t.Fatalf("FailedExecutions = %d, want 0", res.Stats.FailedExecutions)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("got %d failure records, want 1: %+v", len(res.Failures), res.Failures)
	}
	f := res.Failures[0]
	if f.Kind != "watchdog" {
		t.Fatalf("failure kind = %q, want \"watchdog\"", f.Kind)
	}
	if f.Plan != (livelockPlan{}).ID() || f.Index != 1 {
		t.Fatalf("failure identifies plan %q at index %d, want %q at 1", f.Plan, f.Index, (livelockPlan{}).ID())
	}
	if !strings.Contains(f.Detail, "livelocked") || !strings.Contains(f.Detail, "event budget") {
		t.Fatalf("watchdog detail must explain the livelock:\n%s", f.Detail)
	}
	// The campaign drained every plan despite the livelocked one:
	// reference + 4 planner plans + the hostile plan.
	if want := 4 + 1 + 1; len(res.Outcomes) != want {
		t.Fatalf("collected %d outcomes, want %d", len(res.Outcomes), want)
	}
	for _, out := range res.Outcomes {
		if out.Hung && out.Plan != (livelockPlan{}).ID() {
			t.Fatalf("healthy plan %q was flagged hung — budget %d too tight", out.Plan, cfg.EventBudget)
		}
	}
}

// TestHealthyCampaignHasNoFailures pins the invariant CI's jq checks rely
// on: an ordinary campaign reports zero failed and zero hung executions,
// and those fields are emitted (as 0) in the artifact JSON.
func TestHealthyCampaignHasNoFailures(t *testing.T) {
	res := New(Config{Workers: 2, MaxExecutions: 10, Collect: true}).Run(
		workload.Target56261(), core.NewPlanner())
	if res.Stats.FailedExecutions != 0 || res.Stats.HungExecutions != 0 {
		t.Fatalf("healthy campaign reports failures: %+v", res.Stats)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("healthy campaign carries failure records: %+v", res.Failures)
	}
}
