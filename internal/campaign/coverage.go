package campaign

import (
	"sync"

	"repro/internal/core"
)

// classStats is the guided scheduler's running view of one predicted
// signature class.
type classStats struct {
	dispatched int // plans handed to workers so far
	completed  int // executions finished
	novel      int // completed executions that produced an unseen signature
}

// schedItem is one pending plan awaiting dispatch.
type schedItem struct {
	// index is the plan's position in the list handed to the scheduler —
	// the strategy's order without learning, the learned (kept or
	// deferred, possibly impact-ranked) order with it. It is the
	// deterministic tie-break coordinate, not the reported plan index.
	index int
	plan  core.Plan
	class string
}

// coverageScheduler hands out plans in coverage-first order. It is the
// fuzzer-style corpus scheduler of the engine's guided mode:
//
//   - a class nobody has tried yet always outranks tried classes (explore
//     the whole predicted-signature space before revisiting any part),
//   - among tried classes, the one with the best observed novelty rate
//     (novel signatures per completed execution, with +1 optimism for
//     in-flight work) goes first — classes that keep hashing to coverage
//     we already have are starved,
//   - among equals, the class with fewer dispatches wins (round-robin),
//     and finally the lowest original plan index (so the strategy's own
//     ranking — causal scores, deletion-first — breaks all remaining ties
//     deterministically).
//
// All methods are safe for concurrent use by pool workers.
type coverageScheduler struct {
	mu      sync.Mutex
	pending []schedItem
	classes map[string]*classStats
	seen    map[Signature]int
	limit   int // max dispatches (0 = unlimited)
	handed  int // dispatches so far
}

// newCoverageScheduler indexes the plan list. limit caps total dispatches
// (the engine's MaxExecutions). preSeen seeds the novelty set with
// signatures earlier campaigns already observed (the cross-campaign
// corpus): classes that keep re-hashing into corpus-known coverage are
// starved from the first round instead of after rediscovering it.
func newCoverageScheduler(plans []planRef, limit int, preSeen []Signature) *coverageScheduler {
	s := &coverageScheduler{
		pending: make([]schedItem, 0, len(plans)),
		classes: make(map[string]*classStats),
		seen:    make(map[Signature]int),
		limit:   limit,
	}
	for _, sig := range preSeen {
		s.seen[sig]++
	}
	for i, p := range plans {
		cls := classOf(p.plan)
		s.pending = append(s.pending, schedItem{index: i, plan: p.plan, class: cls})
		if s.classes[cls] == nil {
			s.classes[cls] = &classStats{}
		}
	}
	return s
}

// next returns the highest-priority pending plan, its dispatch sequence
// number (0-based, dense), and whether anything was dispatched.
func (s *coverageScheduler) next() (schedItem, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 || (s.limit > 0 && s.handed >= s.limit) {
		return schedItem{}, 0, false
	}
	best := 0
	for i := 1; i < len(s.pending); i++ {
		if s.better(s.pending[i], s.pending[best]) {
			best = i
		}
	}
	item := s.pending[best]
	s.pending = append(s.pending[:best], s.pending[best+1:]...)
	s.classes[item.class].dispatched++
	seq := s.handed
	s.handed++
	return item, seq, true
}

// better reports whether a should be dispatched before b.
func (s *coverageScheduler) better(a, b schedItem) bool {
	ca, cb := s.classes[a.class], s.classes[b.class]
	// 1. Unexplored classes first.
	if (ca.dispatched == 0) != (cb.dispatched == 0) {
		return ca.dispatched == 0
	}
	// 2. Higher novelty rate first: (novel+1)/(completed+1), compared
	//    exactly via cross-multiplication.
	ra := (ca.novel + 1) * (cb.completed + 1)
	rb := (cb.novel + 1) * (ca.completed + 1)
	if ra != rb {
		return ra > rb
	}
	// 3. Fewer dispatches first (spread within equal classes).
	if ca.dispatched != cb.dispatched {
		return ca.dispatched < cb.dispatched
	}
	// 4. Strategy order.
	return a.index < b.index
}

// record feeds one completed execution's signature back into the
// scheduler and reports whether the signature was novel.
func (s *coverageScheduler) record(class string, sig Signature) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen[sig]++
	novel := s.seen[sig] == 1
	st := s.classes[class]
	st.completed++
	if novel {
		st.novel++
	}
	return novel
}

// snapshot returns (distinct classes over all plans, distinct signatures
// observed) for progress reporting.
func (s *coverageScheduler) snapshot() (classes, signatures int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.classes), len(s.seen)
}
