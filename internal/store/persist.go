package store

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/wal"
)

// walRecord is the durable form of one committed mutation.
type walRecord struct {
	Op    string `json:"op"` // "put" | "delete"
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
	Time  int64  `json:"time"`
}

// PersistTo hooks every subsequent commit into the given WAL, so the
// store's full history of mutations is durable. Lease metadata is not
// persisted (lease-attached keys reappear unleased after recovery, which
// conservatively models lost lease sessions after a full store restart).
func (s *Store) PersistTo(l *wal.Log) {
	s.AddNotifyHook(func(events []history.Event) {
		for _, e := range events {
			rec := walRecord{Key: e.Key, Time: e.Time}
			switch e.Type {
			case history.Put:
				rec.Op = "put"
				rec.Value = e.Value
			case history.Delete:
				rec.Op = "delete"
			}
			if _, err := l.Append(rec); err != nil {
				panic(fmt.Sprintf("store: wal persist: %v", err))
			}
		}
	})
}

// RecoverFromWAL rebuilds a store by replaying a WAL produced by
// PersistTo. Replaying the same mutation sequence regenerates identical
// revisions, so the recovered (H, S) matches the original exactly.
func RecoverFromWAL(l *wal.Log) (*Store, error) {
	s := New()
	err := wal.Replay(l, func(index uint64, rec walRecord) error {
		s.SetNow(rec.Time)
		switch rec.Op {
		case "put":
			s.Put(rec.Key, rec.Value)
		case "delete":
			if _, err := s.Delete(rec.Key); err != nil {
				return fmt.Errorf("store: recover record %d: %w", index, err)
			}
		default:
			return fmt.Errorf("store: recover record %d: unknown op %q", index, rec.Op)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}
