package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// runBoth executes the same campaign with snapshotting off and on and
// returns both results. Everything downstream compares canonicalized
// forms: fork vs. full replay is an implementation detail that must never
// surface in any artifact.
func runBoth(t *testing.T, target core.Target, s func() core.Strategy, cfg Config) (off, on Result) {
	t.Helper()
	cfgOff, cfgOn := cfg, cfg
	cfgOff.Snapshot = false
	cfgOn.Snapshot = true
	off = New(cfgOff).Run(target, s())
	on = New(cfgOn).Run(target, s())
	return off, on
}

// assertEquivalent asserts byte-identical canonicalized artifacts and
// NDJSON streams between a snapshot-off and a snapshot-on campaign.
func assertEquivalent(t *testing.T, off, on Result, cfgOff, cfgOn Config) {
	t.Helper()
	if !reflect.DeepEqual(Canonicalize(off), Canonicalize(on)) {
		t.Fatalf("snapshot-on result diverged from snapshot-off\n off: %+v\n  on: %+v",
			Canonicalize(off), Canonicalize(on))
	}
	artOff, err := json.MarshalIndent(CanonicalizeArtifact(BuildArtifact(off, cfgOff)), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	artOn, err := json.MarshalIndent(CanonicalizeArtifact(BuildArtifact(on, cfgOn)), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(artOff, artOn) {
		t.Fatalf("canonicalized campaign.json bytes differ:\n--- off ---\n%s\n--- on ---\n%s", artOff, artOn)
	}
	var ndOff, ndOn bytes.Buffer
	if err := WriteNDJSON(&ndOff, off, cfgOff); err != nil {
		t.Fatal(err)
	}
	if err := WriteNDJSON(&ndOn, on, cfgOn); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ndOff.Bytes(), ndOn.Bytes()) {
		t.Fatalf("telemetry NDJSON bytes differ:\n--- off ---\n%s\n--- on ---\n%s", ndOff.Bytes(), ndOn.Bytes())
	}
}

// TestSnapshotMatchesFullReplay is the correctness cross-check the prefix
// checkpoint layer exists to honor: for every seeded-bug target, a
// campaign with Config.Snapshot produces byte-identical canonicalized
// campaign.json artifacts and NDJSON telemetry streams to the same
// campaign replaying every plan from t=0 — at -parallel 1, 2, and 4.
// All five targets — the k8s pair and the three cassandra-operator ones —
// are snapshotable and exercise the fork path for real.
func TestSnapshotMatchesFullReplay(t *testing.T) {
	targets := []core.Target{
		workload.Target59848(),
		workload.Target56261(),
		workload.TargetCass398(),
		workload.TargetCass400(),
		workload.TargetCass402(),
	}
	for _, target := range targets {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			if testing.Short() && (target.Name == "cass-op-400" || target.Name == "cass-op-402") {
				t.Skip("short mode: cassandra fork path covered by cass-op-398")
			}
			for _, workers := range []int{1, 2, 4} {
				cfg := Config{Workers: workers, MaxExecutions: 25, Collect: true, KeepGoing: true}
				off, on := runBoth(t, target, func() core.Strategy { return core.NewPlanner() }, cfg)
				cfgOff, cfgOn := cfg, cfg
				cfgOff.Snapshot, cfgOn.Snapshot = false, true
				assertEquivalent(t, off, on, cfgOff, cfgOn)
			}
		})
	}
}

// TestSnapshotActuallyForks guards against the cross-check passing
// vacuously: on a snapshotable k8s target the fork substrate must build
// and serve at least one checkpoint, and forked executions must agree
// with their full replays plan by plan.
func TestSnapshotActuallyForks(t *testing.T) {
	target := workload.Target59848()
	seed := int64(1)
	ref, _ := core.ReferenceSeed(target, seed)
	plans := core.NewPlanner().Plans(target, ref)
	fs := buildForkState(target, seed, plans, ref)
	if fs == nil {
		t.Fatal("buildForkState returned nil for a snapshotable target")
	}
	if len(fs.checkpoints) == 0 {
		t.Fatal("fork state has no checkpoints")
	}
	forked := 0
	for i, p := range plans {
		if i >= 20 {
			break
		}
		exec, sig, ok, cause := runForked(target, p, seed, true, 0, fs)
		if !ok {
			if cause != fallbackNone {
				t.Fatalf("plan %d (%s): diagnosable fallback cause %d", i, p.Describe(), cause)
			}
			continue
		}
		forked++
		want, wantSig := runGuarded(target, p, seed, true, 0)
		if !reflect.DeepEqual(exec.Violations, want.Violations) ||
			exec.Detected != want.Detected || sig != wantSig {
			t.Fatalf("plan %d (%s): fork diverged from full replay\nfork: det=%v sig=%x viol=%+v\nfull: det=%v sig=%x viol=%+v",
				i, p.Describe(), exec.Detected, sig, exec.Violations,
				want.Detected, wantSig, want.Violations)
		}
	}
	if forked == 0 {
		t.Fatal("no plan forked: the snapshot cross-check would be vacuous")
	}
	t.Logf("forked %d/20 plans from %d checkpoints", forked, len(fs.checkpoints))
}

// TestSnapshotGuidedAndLearning covers the remaining engine modes on one
// snapshotable target: coverage-guided scheduling and the learning phase
// (prune + ranked) must both be byte-equivalent under forking.
func TestSnapshotGuidedAndLearning(t *testing.T) {
	target := workload.Target56261()
	cfgs := []Config{
		{Workers: 2, Guided: true, MaxExecutions: 30, Collect: true},
		{Workers: 2, MaxExecutions: 30, Collect: true, Prune: true, Ranked: true, KeepGoing: true},
		{Workers: 2, Seeds: []int64{1, 2}, MaxExecutions: 15, Collect: true},
	}
	for _, cfg := range cfgs {
		off, on := runBoth(t, target, func() core.Strategy { return core.NewPlanner() }, cfg)
		cfgOff, cfgOn := cfg, cfg
		cfgOff.Snapshot, cfgOn.Snapshot = false, true
		assertEquivalent(t, off, on, cfgOff, cfgOn)
	}
}
