package sim

import (
	"testing"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.Schedule(10, func() { got = append(got, 2) })
	k.Schedule(5, func() { got = append(got, 1) })
	k.Schedule(10, func() { got = append(got, 3) }) // same time: FIFO by seq
	k.Schedule(20, func() { got = append(got, 4) })
	k.Drain()
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestKernelTimeAdvances(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.Schedule(42, func() { at = k.Now() })
	k.Drain()
	if at != 42 {
		t.Fatalf("callback ran at %d, want 42", at)
	}
	if k.Now() != 42 {
		t.Fatalf("kernel stopped at %d, want 42", k.Now())
	}
}

func TestKernelNegativeDelayClamped(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.Schedule(-5, func() { ran = true })
	k.Drain()
	if !ran {
		t.Fatal("negative-delay callback did not run")
	}
	if k.Now() != 0 {
		t.Fatalf("time moved backwards: %d", k.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel(1)
	ran := false
	tm := k.Schedule(10, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("cancel should succeed on pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should fail")
	}
	k.Drain()
	if ran {
		t.Fatal("canceled callback ran")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.Schedule(1, func() {})
	k.Drain()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Cancel() {
		t.Fatal("cancel after fire should report false")
	}
}

func TestRunUntilStopsBeforeEvent(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.Schedule(100, func() { ran = true })
	k.Run(50)
	if ran {
		t.Fatal("event at t=100 ran during Run(50)")
	}
	if k.Now() != 50 {
		t.Fatalf("now = %d, want 50", k.Now())
	}
	k.Drain()
	if !ran {
		t.Fatal("event never ran")
	}
}

func TestRunForRelative(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(10, func() {})
	k.Drain()
	fired := false
	k.Schedule(30, func() { fired = true })
	k.RunFor(20) // until t=30 exclusive
	if fired {
		t.Fatal("event at +30 fired within RunFor(20)")
	}
	k.RunFor(15)
	if !fired {
		t.Fatal("event did not fire")
	}
}

func TestStopInsideCallback(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 0; i < 10; i++ {
		k.Schedule(Duration(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Drain()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestMaxStepsBudget(t *testing.T) {
	k := NewKernel(1)
	k.SetMaxSteps(5)
	// Self-perpetuating event chain (livelock model).
	var tick func()
	tick = func() { k.Schedule(1, tick) }
	k.Schedule(0, tick)
	k.Drain()
	if k.Steps() != 5 {
		t.Fatalf("steps = %d, want 5", k.Steps())
	}
}

func TestSchedulingInsideCallback(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Schedule(10, func() {
		order = append(order, "outer")
		k.Schedule(0, func() { order = append(order, "inner-now") })
		k.Schedule(5, func() { order = append(order, "inner-later") })
	})
	k.Schedule(12, func() { order = append(order, "mid") })
	k.Drain()
	want := []string{"outer", "inner-now", "mid", "inner-later"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterministicRand(t *testing.T) {
	seq := func(seed int64) []int64 {
		k := NewKernel(seed)
		var out []int64
		for i := 0; i < 8; i++ {
			out = append(out, k.Rand().Int63n(1000))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel(1)
	t1 := k.Schedule(1, func() {})
	k.Schedule(2, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	t1.Cancel()
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 after cancel", k.Pending())
	}
}

func TestTimeString(t *testing.T) {
	tm := Time(1500 * Millisecond)
	if tm.String() != "1.500000s" {
		t.Fatalf("Time.String() = %q", tm.String())
	}
	d := Duration(250 * Microsecond)
	if d.String() != "0.000250s" {
		t.Fatalf("Duration.String() = %q", d.String())
	}
}
