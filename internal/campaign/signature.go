package campaign

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/oracle"
	"repro/internal/trace"
)

// Signature is the compact coverage fingerprint of one execution: the
// sorted set of oracle violations folded with the trace-derived state hash
// (per-component delivered-event sequences plus the committed history —
// see trace.StateHash). Two executions with equal signatures exercised the
// system identically for bug-finding purposes.
type Signature uint64

// String renders the signature as fixed-width hex (the JSON artifact form).
func (s Signature) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// signatureOf folds an execution's violations and its recorded trace into
// one signature. Violation oracle names are sorted so the signature does
// not depend on detection order.
func signatureOf(tr *trace.Trace, violations []oracle.Violation) Signature {
	h := fnv.New64a()
	names := make([]string, 0, len(violations))
	for _, v := range violations {
		names = append(names, v.Oracle)
	}
	sort.Strings(names)
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], tr.StateHash())
	h.Write(buf[:])
	return Signature(h.Sum64())
}

// runInstrumented executes one plan with a trace recorder attached and
// returns both the execution outcome and its coverage signature. It is
// core.RunPlanSeed plus instrumentation; the recorder observes the network
// passively, so the execution itself is unchanged.
func runInstrumented(t core.Target, p core.Plan, seed int64) (core.Execution, Signature) {
	c := t.Build(seed)
	rec := trace.NewRecorder()
	rec.Attach(c.World.Network(), c.Store.Store())
	p.Apply(c)
	t.Workload(c)
	c.RunFor(t.Horizon)
	exec := core.Execution{
		Plan:       p,
		Seed:       seed,
		Violations: c.Violations(),
		Detected:   c.Oracles.Violated(t.Bug),
	}
	return exec, signatureOf(rec.T, exec.Violations)
}

// classOf predicts the signature class of a plan before running it. The
// classifier lives in internal/learn (learn.ClassOf) so the guided
// scheduler's coverage classes and the learning phase's bucket-affinity
// keys are the same vocabulary; this alias keeps campaign-internal call
// sites short.
func classOf(p core.Plan) string { return learn.ClassOf(p) }
