package controllers_test

import (
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/controllers"
	"repro/internal/infra"
	"repro/internal/kubelet"
	"repro/internal/sim"
)

func volCluster(t *testing.T, fixed bool) *infra.Cluster {
	t.Helper()
	opts := infra.DefaultOptions()
	opts.Nodes = []string{"k1"}
	opts.EnableScheduler = false
	opts.VolumeControllerFix = fixed
	c := infra.New(opts)
	c.RunFor(500 * sim.Millisecond)
	return c
}

func TestVolumeControllerReleasesOnObservedTermination(t *testing.T) {
	c := volCluster(t, false)
	c.Admin.CreatePod("db", "k1", "v1", nil)
	c.Admin.CreatePVC("db-data", "db", nil)
	c.RunFor(sim.Second)

	// Slow the kubelet's finalization by dropping its view of the mark
	// briefly... simplest reliable route: mark, then hold the world long
	// enough for a poll to land between mark and delete. Instead, delete
	// slowly: only mark (kubelet finalizes ~ms later, so to guarantee the
	// controller SEES the mark we drop the *delete* notification to it).
	c.World.Network().AddInterceptor(sim.InterceptorFunc(func(m *sim.Message) sim.Decision {
		if m.Kind != apiserver.KindWatchPush || m.To != controllers.VolumeControllerID {
			return sim.Decision{Verdict: sim.Pass}
		}
		for _, ev := range m.Payload.(*apiserver.WatchPushMsg).Events {
			if ev.Type == apiserver.Deleted && ev.Object.Meta.Kind == cluster.KindPod {
				return sim.Decision{Verdict: sim.Drop}
			}
		}
		return sim.Decision{Verdict: sim.Pass}
	}))

	c.Admin.MarkPodDeleted("db", nil)
	c.RunFor(2 * sim.Second)
	// The controller observed Terminating (the Modified event) and, on a
	// later poll, released the PVC even though it kept "seeing" the pod.
	pvcs := c.GroundTruth(cluster.KindPVC)
	if len(pvcs) != 1 || pvcs[0].PVC.Phase != cluster.PVCReleased {
		t.Fatalf("pvc = %+v", pvcs)
	}
	if c.Volume.Releases != 1 {
		t.Fatalf("releases = %d", c.Volume.Releases)
	}
}

func TestVolumeControllerGapBugAndFix(t *testing.T) {
	for _, fixed := range []bool{false, true} {
		c := volCluster(t, fixed)
		c.Admin.CreatePod("db", "k1", "v1", nil)
		c.Admin.CreatePVC("db-data", "db", nil)
		c.RunFor(sim.Second)
		// Drop the Modified(terminating) notification so the controller
		// only ever observes the disappearance.
		c.World.Network().AddInterceptor(sim.InterceptorFunc(func(m *sim.Message) sim.Decision {
			if m.Kind != apiserver.KindWatchPush || m.To != controllers.VolumeControllerID {
				return sim.Decision{Verdict: sim.Pass}
			}
			for _, ev := range m.Payload.(*apiserver.WatchPushMsg).Events {
				if ev.Type == apiserver.Modified && ev.Object.Meta.DeletionTimestamp != 0 {
					return sim.Decision{Verdict: sim.Drop}
				}
			}
			return sim.Decision{Verdict: sim.Pass}
		}))
		c.Admin.MarkPodDeleted("db", nil)
		c.RunFor(2 * sim.Second)
		pvcs := c.GroundTruth(cluster.KindPVC)
		released := len(pvcs) == 1 && pvcs[0].PVC.Phase == cluster.PVCReleased
		if fixed && !released {
			t.Fatalf("fixed controller orphaned the PVC: %+v", pvcs)
		}
		if !fixed && released {
			t.Fatal("stock controller released without observing the mark (bug not reproduced)")
		}
	}
}

func TestVolumeControllerCrashRestart(t *testing.T) {
	c := volCluster(t, true)
	c.Admin.CreatePod("db", "k1", "v1", nil)
	c.Admin.CreatePVC("db-data", "db", nil)
	c.RunFor(sim.Second)
	if err := c.World.Crash(controllers.VolumeControllerID); err != nil {
		t.Fatal(err)
	}
	c.Admin.MarkPodDeleted("db", nil)
	c.RunFor(sim.Second)
	if err := c.World.Restart(controllers.VolumeControllerID); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Second)
	pvcs := c.GroundTruth(cluster.KindPVC)
	if len(pvcs) != 1 || pvcs[0].PVC.Phase != cluster.PVCReleased {
		t.Fatalf("restarted fixed controller did not release: %+v", pvcs)
	}
}

func TestNodeLifecycleMarksAndDeletesDeadNode(t *testing.T) {
	opts := infra.DefaultOptions()
	opts.Nodes = []string{"k1", "k2"}
	opts.EnableScheduler = false
	opts.EnableVolumeController = false
	opts.EnableNodeLifecycle = true
	c := infra.New(opts)
	c.RunFor(sim.Second)

	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(sim.Second)

	// Kill k1's kubelet process AND its host: heartbeats stop.
	if err := c.World.Crash(kubelet.NodeID("k1")); err != nil {
		t.Fatal(err)
	}
	c.Hosts["k1"].Reset()

	// After NotReadyAfter the node is marked; after DeleteAfter it is
	// removed and its pods force-deleted.
	c.RunFor(2 * sim.Second)
	var k1Ready *bool
	for _, n := range c.GroundTruth(cluster.KindNode) {
		if n.Meta.Name == "k1" {
			v := n.Node.Ready
			k1Ready = &v
		}
	}
	if k1Ready == nil || *k1Ready {
		t.Fatalf("dead node not marked NotReady (ready=%v)", k1Ready)
	}

	c.RunFor(4 * sim.Second)
	for _, n := range c.GroundTruth(cluster.KindNode) {
		if n.Meta.Name == "k1" {
			t.Fatal("dead node object not deleted")
		}
	}
	for _, p := range c.GroundTruth(cluster.KindPod) {
		if p.Pod.NodeName == "k1" {
			t.Fatal("pod on dead node not evicted")
		}
	}
	if c.NodeLC.DeletedNodes != 1 || c.NodeLC.MarkedNotReady < 1 {
		t.Fatalf("nodeLC counters: %+v", *c.NodeLC)
	}
}

func TestNodeLifecycleLeavesHealthyNodesAlone(t *testing.T) {
	opts := infra.DefaultOptions()
	opts.EnableScheduler = false
	opts.EnableVolumeController = false
	opts.EnableNodeLifecycle = true
	c := infra.New(opts)
	c.RunFor(6 * sim.Second)
	if got := len(c.GroundTruth(cluster.KindNode)); got != 2 {
		t.Fatalf("healthy nodes GCed: %d left", got)
	}
	if c.NodeLC.MarkedNotReady != 0 || c.NodeLC.DeletedNodes != 0 {
		t.Fatalf("nodeLC acted on healthy nodes: %+v", *c.NodeLC)
	}
}
