package trace

import (
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// buildTrace constructs a small hand-made trace:
//
//	rev 5  nodes/n1 Modified  -> scheduler at t=100
//	rev 6  pods/p1  Added     -> scheduler at t=110
//	scheduler writes pods/p1 (the bind) at t=130
//	rev 7  pods/p1  Modified  -> kubelet-k1 at t=150
//	kubelet writes pods/p1 (status) at t=160
//	rev 8  nodes/n1 Deleted   -> scheduler at t=900 (no reaction)
func buildTrace() *Trace {
	r := NewRecorder()
	push(r, "api-1", "scheduler", 1, apiserver.Modified, cluster.KindNode, "n1", 5, false)
	r.T.Deliveries[len(r.T.Deliveries)-1].Time = 100
	push(r, "api-1", "scheduler", 2, apiserver.Added, cluster.KindPod, "p1", 6, false)
	r.T.Deliveries[len(r.T.Deliveries)-1].Time = 110
	r.T.Writes = append(r.T.Writes, Write{From: "scheduler", Time: 130, Method: apiserver.MethodUpdate, Kind: cluster.KindPod, Name: "p1"})
	push(r, "api-1", "kubelet-k1", 3, apiserver.Modified, cluster.KindPod, "p1", 7, false)
	r.T.Deliveries[len(r.T.Deliveries)-1].Time = 150
	r.T.Writes = append(r.T.Writes, Write{From: "kubelet-k1", Time: 160, Method: apiserver.MethodUpdate, Kind: cluster.KindPod, Name: "p1"})
	push(r, "api-1", "scheduler", 4, apiserver.Deleted, cluster.KindNode, "n1", 8, false)
	r.T.Deliveries[len(r.T.Deliveries)-1].Time = 900
	return r.T
}

func TestCausesOfWrite(t *testing.T) {
	g := NewCausalGraph(buildTrace(), sim.Duration(100))
	bind := g.trace.Writes[0] // scheduler bind at t=130
	causes := g.CausesOf(bind)
	if len(causes) != 2 {
		t.Fatalf("causes = %d, want 2 (node mod + pod add)", len(causes))
	}
	// Sorted by gap: pod Added (gap 20) before node Modified (gap 30).
	if causes[0].Delivery.Kind != cluster.KindPod || causes[1].Delivery.Kind != cluster.KindNode {
		t.Fatalf("cause order = %v, %v", causes[0].Delivery, causes[1].Delivery)
	}
	// The late node deletion at t=900 is not a cause of anything.
	for _, c := range causes {
		if c.Delivery.Revision == 8 {
			t.Fatal("future delivery attributed as cause")
		}
	}
}

func TestEffectsOfRevision(t *testing.T) {
	g := NewCausalGraph(buildTrace(), sim.Duration(100))
	effects := g.EffectsOf(6) // pod creation observed by the scheduler
	if len(effects) != 1 || effects[0].Write.From != "scheduler" {
		t.Fatalf("effects = %+v", effects)
	}
	if effects := g.EffectsOf(8); len(effects) != 0 {
		t.Fatalf("unreacted delivery has effects: %+v", effects)
	}
	// Revision 7 reached the kubelet, which wrote status shortly after.
	if effects := g.EffectsOf(7); len(effects) != 1 || effects[0].Write.From != "kubelet-k1" {
		t.Fatalf("effects of 7 = %+v", effects)
	}
}

func TestHotDeliveriesRanking(t *testing.T) {
	g := NewCausalGraph(buildTrace(), sim.Duration(100))
	hot := g.HotDeliveries(2)
	if len(hot) != 2 {
		t.Fatalf("hot = %d", len(hot))
	}
	// Both scheduler deliveries caused 1 write each; the kubelet delivery
	// also caused 1. Ties break toward deletion-adjacent (none among the
	// reacted ones), then earlier time → rev 5 first.
	if hot[0].Revision != 5 {
		t.Fatalf("hot[0] = %+v", hot[0])
	}
}

func TestChainsThroughObject(t *testing.T) {
	g := NewCausalGraph(buildTrace(), sim.Duration(100))
	chains := g.ChainsThrough(cluster.KindPod, "p1")
	if len(chains) != 2 {
		t.Fatalf("chains = %d", len(chains))
	}
	if chains[0].Delivery.To != "scheduler" || chains[1].Delivery.To != "kubelet-k1" {
		t.Fatalf("chain order: %v then %v", chains[0].Delivery.To, chains[1].Delivery.To)
	}
}

func TestCausalGraphOnRealTraceSmoke(t *testing.T) {
	// Smoke-test on a real recorded trace: the graph must attribute at
	// least one cause to some component write.
	r := NewRecorder()
	// Reuse the recorder test harness style: real traces are produced by
	// core.Reference; here a synthetic minimal one suffices and the real
	// integration is covered by cmd/traceview usage.
	push(r, "api-1", "scheduler", 1, apiserver.Added, cluster.KindPod, "x", 2, false)
	r.T.Writes = append(r.T.Writes, Write{From: "scheduler", Time: 1, Kind: cluster.KindPod, Name: "x"})
	g := NewCausalGraph(r.T, 0)
	if g.ReactionWindow == 0 {
		t.Fatal("default window not applied")
	}
}
