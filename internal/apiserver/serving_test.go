package apiserver

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/store"
)

// servingHarness builds one apiserver with a configurable Config plus a
// client, mirroring newHarness but letting tests pin the legacy serving
// paths.
func servingHarness(t testing.TB, mutate func(*Config)) *harness {
	t.Helper()
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	h := &harness{w: w, st: store.NewServer(w, "etcd", store.New())}
	cfg := DefaultConfig("etcd")
	if mutate != nil {
		mutate(&cfg)
	}
	h.apis = append(h.apis, New(w, "api-1", cfg))
	h.cl = &testClient{id: "client", w: w}
	h.cl.rpc = sim.NewRPCClient(w.Network(), "client", 300*sim.Millisecond)
	w.Network().Register("client", h.cl)
	w.Kernel().RunFor(100 * sim.Millisecond)
	return h
}

func mkNode(name string) *cluster.Object {
	return cluster.NewNode(name, "uid-"+name, cluster.NodeSpec{Ready: true, Capacity: 4})
}

// TestRelayVisitsOnlyInterestedSubs is the regression test for the
// serving-path scaling bug: relaying one committed event must visit only
// the subscribers of that event's kind, not every subscriber on the
// apiserver. Before the per-kind index, a pod event at N nodes scanned
// the N node-kubelet subscriptions too — O(all subs) per event.
func TestRelayVisitsOnlyInterestedSubs(t *testing.T) {
	const nodeSubs = 40
	h := servingHarness(t, nil)
	api := h.apis[0]
	// One pod subscriber and many node subscribers.
	if _, err := h.cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindPod, SubID: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodeSubs; i++ {
		if _, err := h.cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindNode, SubID: uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := api.Stats()
	if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k1")}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)
	after := api.Stats()
	events := after.RelayEvents - before.RelayEvents
	visits := after.RelaySubVisits - before.RelaySubVisits
	if events == 0 {
		t.Fatal("pod create relayed no events; the assertion is vacuous")
	}
	// Every relayed pod event must visit exactly the one pod subscriber.
	if visits != events {
		t.Fatalf("relay visited %d subs over %d pod events; want 1 visit/event (index broken: node subs scanned)", visits, events)
	}
	if after.RelaySends-before.RelaySends != events {
		t.Fatalf("sends=%d events=%d: pod sub missed events", after.RelaySends-before.RelaySends, events)
	}
}

// TestUnindexedRelayScansAllSubs pins the legacy behaviour the index
// replaced (and E12 measures against): under UnindexedServing every
// event visits every subscriber.
func TestUnindexedRelayScansAllSubs(t *testing.T) {
	const nodeSubs = 40
	h := servingHarness(t, func(c *Config) { c.UnindexedServing = true })
	api := h.apis[0]
	if _, err := h.cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindPod, SubID: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodeSubs; i++ {
		if _, err := h.cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindNode, SubID: uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := api.Stats()
	if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k1")}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)
	after := api.Stats()
	events := after.RelayEvents - before.RelayEvents
	visits := after.RelaySubVisits - before.RelaySubVisits
	if events == 0 {
		t.Fatal("no events relayed")
	}
	if visits != events*(nodeSubs+1) {
		t.Fatalf("unindexed relay visited %d subs over %d events; want %d (all subs per event)",
			visits, events, events*(nodeSubs+1))
	}
}

// TestIndexedServingMatchesUnindexed drives an identical mixed workload
// through an indexed and an unindexed apiserver and requires identical
// client-visible bytes: every list result and every watch push. The
// indexed path is an acceleration, never a semantic change.
func TestIndexedServingMatchesUnindexed(t *testing.T) {
	run := func(unindexed bool) (pushes []*WatchPushMsg, lists [][]*cluster.Object) {
		h := servingHarness(t, func(c *Config) { c.UnindexedServing = unindexed })
		if _, err := h.cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindPod, SubID: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindNode, SubID: 2}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkNode(fmt.Sprintf("n%02d", i))}); err != nil {
				t.Fatal(err)
			}
			if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod(fmt.Sprintf("p%02d", i), fmt.Sprintf("n%02d", i))}); err != nil {
				t.Fatal(err)
			}
		}
		// Mutate and delete to exercise index maintenance + memo
		// invalidation.
		g, err := h.cl.call("api-1", MethodGet, &GetRequest{Kind: cluster.KindPod, Name: "p03"})
		if err != nil {
			t.Fatal(err)
		}
		upd := g.(*GetResponse).Object.Clone()
		upd.Pod.Phase = cluster.PodRunning
		if _, err := h.cl.call("api-1", MethodUpdate, &UpdateRequest{Object: upd}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.cl.call("api-1", MethodDelete, &DeleteRequest{Kind: cluster.KindPod, Name: "p01"}); err != nil {
			t.Fatal(err)
		}
		h.w.Kernel().RunFor(100 * sim.Millisecond)
		for _, kind := range []cluster.Kind{cluster.KindPod, cluster.KindNode} {
			l, err := h.cl.call("api-1", MethodList, &ListRequest{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			lists = append(lists, l.(*ListResponse).Objects)
		}
		return h.cl.pushes, lists
	}
	idxPush, idxLists := run(false)
	rawPush, rawLists := run(true)
	if !reflect.DeepEqual(idxLists, rawLists) {
		t.Fatalf("list results diverge between indexed and unindexed serving:\nindexed: %+v\nlegacy: %+v", idxLists, rawLists)
	}
	if !reflect.DeepEqual(idxPush, rawPush) {
		t.Fatalf("watch pushes diverge between indexed and unindexed serving:\nindexed: %+v\nlegacy: %+v", idxPush, rawPush)
	}
}

// TestBatchWatchDeliversSameEvents: batched delivery coalesces pushes but
// must deliver the same events in the same order per subscriber.
func TestBatchWatchDeliversSameEvents(t *testing.T) {
	flatten := func(pushes []*WatchPushMsg) map[uint64][]WatchEvent {
		out := make(map[uint64][]WatchEvent)
		for _, p := range pushes {
			out[p.SubID] = append(out[p.SubID], p.Events...)
		}
		return out
	}
	run := func(batch bool) (map[uint64][]WatchEvent, int) {
		h := servingHarness(t, func(c *Config) { c.BatchWatch = batch })
		if _, err := h.cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindPod, SubID: 1}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod(fmt.Sprintf("p%02d", i), "k1")}); err != nil {
				t.Fatal(err)
			}
		}
		h.w.Kernel().RunFor(100 * sim.Millisecond)
		return flatten(h.cl.pushes), len(h.cl.pushes)
	}
	single, _ := run(false)
	batched, _ := run(true)
	if !reflect.DeepEqual(single, batched) {
		t.Fatalf("batched watch delivered different events:\nsingle: %+v\nbatched: %+v", single, batched)
	}
}

// TestDecodeMemoHitsOnRepeatedLists: the ModRevision-keyed decode memo
// must serve repeated lists of unchanged objects from cache and
// invalidate per-object on writes.
func TestDecodeMemoHitsOnRepeatedLists(t *testing.T) {
	h := servingHarness(t, nil)
	api := h.apis[0]
	for i := 0; i < 5; i++ {
		if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod(fmt.Sprintf("p%d", i), "k1")}); err != nil {
			t.Fatal(err)
		}
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)
	if _, err := h.cl.call("api-1", MethodList, &ListRequest{Kind: cluster.KindPod}); err != nil {
		t.Fatal(err)
	}
	warm := api.Stats()
	if _, err := h.cl.call("api-1", MethodList, &ListRequest{Kind: cluster.KindPod}); err != nil {
		t.Fatal(err)
	}
	after := api.Stats()
	if hits := after.DecodeHits - warm.DecodeHits; hits != 5 {
		t.Fatalf("second list scored %d memo hits, want 5", hits)
	}
	if misses := after.DecodeMisses - warm.DecodeMisses; misses != 0 {
		t.Fatalf("second list re-decoded %d unchanged objects", misses)
	}
	if scanned := after.ListKeysScanned - warm.ListKeysScanned; scanned != 5 {
		t.Fatalf("indexed list scanned %d keys, want exactly the 5 pod keys", scanned)
	}
}

// TestWindowTrimAmortized: the watch window must not be re-sliced with a
// fresh allocation on every appended event. The head index advances
// per-event (free) and the backing array is compacted only once per
// WindowSize trims, so the array never exceeds twice the logical window.
func TestWindowTrimAmortized(t *testing.T) {
	h := servingHarness(t, func(c *Config) { c.WindowSize = 64 })
	api := h.apis[0]
	for i := 0; i < 40; i++ {
		if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod(fmt.Sprintf("p%03d", i), "k1")}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.cl.call("api-1", MethodDelete, &DeleteRequest{Kind: cluster.KindPod, Name: fmt.Sprintf("p%03d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	h.w.Kernel().RunFor(100 * sim.Millisecond)
	st := api.Stats()
	if st.WindowTrims == 0 {
		t.Fatal("window never trimmed; assertions below are vacuous")
	}
	if st.WindowCompacts >= st.WindowTrims {
		t.Fatalf("compacted on (nearly) every trim: %d compacts for %d trims — trimming is O(n) again", st.WindowCompacts, st.WindowTrims)
	}
	// The compaction cadence is one per WindowSize trims.
	if want := st.WindowTrims / 64; st.WindowCompacts > want+1 {
		t.Fatalf("%d compacts for %d trims; want about %d (one per WindowSize)", st.WindowCompacts, st.WindowTrims, want)
	}
}

// BenchmarkRelayPerEvent measures per-event relay cost while the number
// of *uninterested* subscribers grows. With the per-kind index the cost
// is O(interested subs) — flat as node subs scale; the unindexed variant
// degrades linearly. (The deterministic counterpart of this claim is
// asserted by TestRelayVisitsOnlyInterestedSubs; this benchmark is the
// wall-clock evidence for E12.)
func BenchmarkRelayPerEvent(b *testing.B) {
	for _, unindexed := range []bool{false, true} {
		mode := "indexed"
		if unindexed {
			mode = "unindexed"
		}
		for _, subs := range []int{10, 100, 500} {
			b.Run(fmt.Sprintf("%s/nodeSubs=%d", mode, subs), func(b *testing.B) {
				h := servingHarness(b, func(c *Config) { c.UnindexedServing = unindexed })
				api := h.apis[0]
				for i := 0; i < subs; i++ {
					if _, err := h.cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindNode, SubID: uint64(100 + i)}); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := h.cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindPod, SubID: 1}); err != nil {
					b.Fatal(err)
				}
				ev := WatchEvent{Type: Added, Object: mkPod("bench", "k1"), Revision: 1 << 40}
				key := "/registry/pods/bench"
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.Revision++ // keep lastSent advancing so relayTo runs
					api.relay(ev, key)
				}
			})
		}
	}
}

// BenchmarkWindowTrim measures steady-state event application cost with
// a full window. Amortized O(1) trimming keeps allocs/op near constant
// regardless of window size; the pre-fix slide re-allocated the entire
// window every event.
func BenchmarkWindowTrim(b *testing.B) {
	for _, winSize := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("window=%d", winSize), func(b *testing.B) {
			h := servingHarness(b, func(c *Config) { c.WindowSize = winSize })
			api := h.apis[0]
			obj := mkPod("bench", "k1")
			enc, err := cluster.Encode(obj)
			if err != nil {
				b.Fatal(err)
			}
			rev := int64(1 << 40)
			apply := func() {
				rev++
				api.applyOne(history.Event{
					Revision: rev,
					Type:     history.Put,
					Key:      cluster.Key(cluster.KindPod, "bench"),
					Value:    enc,
					PrevRev:  rev - 1,
				})
			}
			for i := 0; i < winSize+8; i++ {
				apply() // fill the window past its size
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				apply()
			}
		})
	}
}
