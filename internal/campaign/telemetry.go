package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/explain"
)

// This file emits the campaign telemetry stream: newline-delimited JSON
// (NDJSON), one event per line, in a fixed order. The stream is derived
// exclusively from the campaign's deterministic execution set and carries
// no wall-clock or worker-count dependent fields, so it is byte-identical
// across reruns and — for unguided campaigns — across worker counts.
// (Guided schedules are deterministic per worker count; their streams
// reproduce exactly at a fixed -parallel value.) Downstream tooling can
// therefore diff two streams to detect behavioural drift, not just read
// them.
//
// Fleet supervision counters (Stats.Fleet: worker deaths, task retries,
// quarantines) are deliberately NOT emitted here: they measure the host
// environment, and including them would break the stream's central
// contract — a farm campaign with injected worker crashes must emit the
// same bytes as a failure-free run, since retried tasks re-execute
// deterministically. Fleet health surfaces instead in the (non-canonical)
// artifact stats, the phfarm fleet report, and the coordinator journal's
// death/retry NDJSON lines.
//
// Event kinds, in emission order per campaign:
//
//	campaign_start   identity + configuration
//	learn_profile    one per (seed, component), learning campaigns only
//	plan_pruned      one per deferred plan, learning campaigns only
//	seed_result      one per seed, in sweep order
//	execution        one per deterministic execution (Collect only)
//	bucket           one per failure bucket, in signature order
//	campaign_end     sweep-level result + deterministic counters
type telemetryEvent struct {
	Event    string `json:"event"`
	Target   string `json:"target,omitempty"`
	Strategy string `json:"strategy,omitempty"`

	// campaign_start
	Seeds         []int64 `json:"seeds,omitempty"`
	Guided        *bool   `json:"guided,omitempty"`
	MaxExecutions int     `json:"max_executions,omitempty"`
	KeepGoing     *bool   `json:"keep_going,omitempty"`
	Explain       *bool   `json:"explain,omitempty"`
	Prune         *bool   `json:"prune,omitempty"`
	Ranked        *bool   `json:"ranked,omitempty"`

	// learn_profile (per seed, per component: the learned
	// observation→action table's summary row)
	Component  string   `json:"component,omitempty"`
	Deliveries int      `json:"deliveries,omitempty"`
	Consumed   int      `json:"consumed,omitempty"`
	Writes     int      `json:"writes,omitempty"`
	CASWrites  int      `json:"cas_writes,omitempty"`
	Kinds      []string `json:"kinds,omitempty"`

	// plan_pruned (per deferred plan: why it was deferred)
	Action         string `json:"action,omitempty"`
	Reason         string `json:"reason,omitempty"`
	Surface        *int   `json:"surface,omitempty"`
	Representative *int   `json:"representative,omitempty"`

	// seed_result / execution
	Seed *int64 `json:"seed,omitempty"`

	// seed_result
	Executions    int    `json:"executions,omitempty"`
	PlansTotal    int    `json:"plans_total,omitempty"`
	DetectingPlan string `json:"detecting_plan,omitempty"`

	// execution
	Index      *int     `json:"index,omitempty"`
	Plan       string   `json:"plan,omitempty"`
	Class      string   `json:"class,omitempty"`
	Signature  string   `json:"signature,omitempty"`
	Violations []string `json:"violations,omitempty"`
	Failed     *bool    `json:"failed,omitempty"`
	Hung       *bool    `json:"hung,omitempty"`
	Failure    string   `json:"failure,omitempty"`

	// bucket
	Oracles            []string             `json:"oracles,omitempty"`
	Count              int                  `json:"count,omitempty"`
	ExamplePlan        string               `json:"example_plan,omitempty"`
	ExampleSeed        *int64               `json:"example_seed,omitempty"`
	MinimalPlan        string               `json:"minimal_plan,omitempty"`
	MinimizeExecutions int                  `json:"minimize_executions,omitempty"`
	Explanation        *explain.Explanation `json:"explanation,omitempty"`

	// shared result fields
	Detected *bool `json:"detected,omitempty"`

	// campaign_end
	DetectedSeed        *int64 `json:"detected_seed,omitempty"`
	Detections          int    `json:"detections,omitempty"`
	ViolatingExecutions int    `json:"violating_executions,omitempty"`
	CoverageClasses     int    `json:"coverage_classes,omitempty"`
	NovelSignatures     int    `json:"novel_signatures,omitempty"`
	ExplainedBuckets    int    `json:"explained_buckets,omitempty"`
	// FailedExecutions / HungExecutions are emitted unconditionally on
	// campaign_end (healthy campaigns assert them == 0); the pruning
	// counters likewise (sound pruned campaigns assert
	// pruning_unsound_detections == 0).
	FailedExecutions         *int `json:"failed_executions,omitempty"`
	HungExecutions           *int `json:"hung_executions,omitempty"`
	PlansPruned              *int `json:"plans_pruned,omitempty"`
	PlansDeduped             *int `json:"plans_deduped,omitempty"`
	PrunedExecuted           *int `json:"pruned_executed,omitempty"`
	PruningUnsoundDetections *int `json:"pruning_unsound_detections,omitempty"`
	// Corpus counters are emitted on campaign_end only when the campaign
	// ran with a cross-campaign corpus (Config.Coverage), so corpus-less
	// streams keep their historical bytes.
	CorpusRegressionPlans  *int `json:"corpus_regression_plans,omitempty"`
	CorpusSkippedPlans     *int `json:"corpus_skipped_plans,omitempty"`
	CorpusInvalidatedSeeds *int `json:"corpus_invalidated_seeds,omitempty"`
	// SnapshotFallbacks is emitted on campaign_end only when at least one
	// fork fell back for a diagnosable cause, so healthy snapshot-on
	// streams stay byte-identical to snapshot-off streams. The counts are
	// a pure function of the deterministic execution set.
	SnapshotFallbacks *SnapshotFallbacks `json:"snapshot_fallbacks,omitempty"`
}

func boolPtr(b bool) *bool    { return &b }
func intPtr(i int) *int       { return &i }
func int64Ptr(i int64) *int64 { return &i }

// WriteNDJSON emits one campaign's telemetry stream to w.
func WriteNDJSON(w io.Writer, res Result, cfg Config) error {
	emit := func(ev telemetryEvent) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("campaign: marshal telemetry event: %w", err)
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return fmt.Errorf("campaign: write telemetry event: %w", err)
		}
		return nil
	}

	if err := emit(telemetryEvent{
		Event:         "campaign_start",
		Target:        res.Target,
		Strategy:      res.Strategy,
		Seeds:         cfg.seedList(),
		Guided:        boolPtr(cfg.Guided),
		MaxExecutions: cfg.MaxExecutions,
		KeepGoing:     boolPtr(cfg.KeepGoing),
		Explain:       boolPtr(cfg.Explain),
		Prune:         boolPtr(cfg.Prune),
		Ranked:        boolPtr(cfg.Ranked),
	}); err != nil {
		return err
	}

	for _, sl := range res.Learn {
		for _, p := range sl.Profiles {
			if err := emit(telemetryEvent{
				Event:      "learn_profile",
				Seed:       int64Ptr(sl.Seed),
				Component:  p.Component,
				Deliveries: p.Deliveries,
				Consumed:   p.Consumed,
				Writes:     p.Writes,
				CASWrites:  p.CASWrites,
				Kinds:      p.Kinds,
			}); err != nil {
				return err
			}
		}
		for _, d := range sl.Decisions {
			if err := emit(telemetryEvent{
				Event:          "plan_pruned",
				Seed:           int64Ptr(sl.Seed),
				Index:          intPtr(d.Index),
				Plan:           d.Plan,
				Class:          d.Class,
				Action:         d.Action,
				Reason:         d.Reason,
				Surface:        intPtr(d.Surface),
				Representative: intPtr(d.Representative),
			}); err != nil {
				return err
			}
		}
	}

	for _, sr := range res.Seeds {
		if err := emit(telemetryEvent{
			Event:         "seed_result",
			Seed:          int64Ptr(sr.Seed),
			Detected:      boolPtr(sr.Campaign.Detected),
			Executions:    sr.Campaign.Executions,
			PlansTotal:    sr.Campaign.PlansTotal,
			DetectingPlan: sr.Campaign.DetectingPlan,
		}); err != nil {
			return err
		}
	}

	for _, out := range res.Outcomes {
		ev := telemetryEvent{
			Event:      "execution",
			Seed:       int64Ptr(out.Seed),
			Index:      intPtr(out.Index),
			Plan:       out.Plan,
			Class:      out.Class,
			Signature:  out.Signature,
			Detected:   boolPtr(out.Detected),
			Violations: out.Violations,
		}
		if out.Failed || out.Hung {
			ev.Failed = boolPtr(out.Failed)
			ev.Hung = boolPtr(out.Hung)
			ev.Failure = out.Failure
		}
		if err := emit(ev); err != nil {
			return err
		}
	}

	for _, b := range res.Buckets {
		if err := emit(telemetryEvent{
			Event:              "bucket",
			Signature:          b.Signature,
			Oracles:            b.Oracles,
			Count:              b.Count,
			ExamplePlan:        b.ExamplePlan,
			ExampleSeed:        int64Ptr(b.ExampleSeed),
			Detected:           boolPtr(b.Detected),
			MinimalPlan:        b.MinimalPlan,
			MinimizeExecutions: b.MinimizeExecutions,
			Explanation:        b.Explanation,
		}); err != nil {
			return err
		}
	}

	end := telemetryEvent{
		Event:                    "campaign_end",
		Target:                   res.Target,
		Strategy:                 res.Strategy,
		Detected:                 boolPtr(res.Detected),
		Executions:               res.Campaign.Executions,
		Detections:               res.Stats.Detections,
		ViolatingExecutions:      res.Stats.ViolatingExecutions,
		CoverageClasses:          res.Stats.CoverageClasses,
		NovelSignatures:          res.Stats.NovelSignatures,
		ExplainedBuckets:         res.Stats.ExplainedBuckets,
		FailedExecutions:         intPtr(res.Stats.FailedExecutions),
		HungExecutions:           intPtr(res.Stats.HungExecutions),
		PlansPruned:              intPtr(res.Stats.PlansPruned),
		PlansDeduped:             intPtr(res.Stats.PlansDeduped),
		PrunedExecuted:           intPtr(res.Stats.PrunedExecuted),
		PruningUnsoundDetections: intPtr(res.Stats.PruningUnsoundDetections),
	}
	if res.Detected {
		end.DetectedSeed = int64Ptr(res.DetectedSeed)
	}
	if cfg.Coverage != nil {
		end.CorpusRegressionPlans = intPtr(res.Stats.CorpusRegressionPlans)
		end.CorpusSkippedPlans = intPtr(res.Stats.CorpusSkippedPlans)
		end.CorpusInvalidatedSeeds = intPtr(res.Stats.CorpusInvalidatedSeeds)
	}
	if res.Stats.SnapshotFallbacks.total() > 0 {
		fb := *res.Stats.SnapshotFallbacks
		end.SnapshotFallbacks = &fb
	}
	return emit(end)
}

// WriteNDJSONFile writes the concatenated telemetry streams of several
// campaigns (in matrix order) to path.
func WriteNDJSONFile(path string, results []Result, cfg Config) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("campaign: create telemetry file: %w", err)
	}
	bw := bufio.NewWriter(f)
	for _, res := range results {
		if err := WriteNDJSON(bw, res, cfg); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("campaign: flush telemetry file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("campaign: close telemetry file: %w", err)
	}
	return nil
}
