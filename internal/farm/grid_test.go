package farm

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func writeGrid(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadGridValid(t *testing.T) {
	path := writeGrid(t, `{
		"name": "smoke",
		"targets": ["k8s-59848", "cass-op-400"],
		"strategies": ["partial-history"],
		"seeds": [1, 2],
		"repeats": 2,
		"max_executions": 50,
		"toggles": [
			{"name": "baseline"},
			{"name": "guided", "guided": true}
		]
	}`)
	g, err := LoadGrid(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if g.Name != "smoke" || g.Repeats != 2 || len(g.Toggles) != 2 {
		t.Fatalf("parsed grid wrong: %+v", g)
	}
}

func TestLoadGridValidation(t *testing.T) {
	cases := map[string]string{
		"missing name":    `{"targets":["a"],"strategies":["s"],"seeds":[1],"toggles":[{"name":"t"}]}`,
		"no targets":      `{"name":"g","targets":[],"strategies":["s"],"seeds":[1],"toggles":[{"name":"t"}]}`,
		"no seeds":        `{"name":"g","targets":["a"],"strategies":["s"],"seeds":[],"toggles":[{"name":"t"}]}`,
		"no toggles":      `{"name":"g","targets":["a"],"strategies":["s"],"seeds":[1],"toggles":[]}`,
		"unnamed toggle":  `{"name":"g","targets":["a"],"strategies":["s"],"seeds":[1],"toggles":[{"guided":true}]}`,
		"dup toggle":      `{"name":"g","targets":["a"],"strategies":["s"],"seeds":[1],"toggles":[{"name":"t"},{"name":"t"}]}`,
		"ranked no prune": `{"name":"g","targets":["a"],"strategies":["s"],"seeds":[1],"toggles":[{"name":"t","ranked":true}]}`,
		"negative deadline": `{"name":"g","targets":["a"],"strategies":["s"],"seeds":[1],` +
			`"toggles":[{"name":"t","task_deadline_sec":-5}]}`,
		"bad json": `{`,
	}
	for label, body := range cases {
		if _, err := LoadGrid(writeGrid(t, body)); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
	if _, err := LoadGrid(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("absent file: expected error")
	}
}

// TestExpandDeterministicOrder: toggle-major then repeat, with repeat r
// shifting every seed by r*stride — and two Expand calls are identical.
func TestExpandSeedShiftAndOrder(t *testing.T) {
	g := Grid{
		Name:       "g",
		Targets:    []string{"k8s-59848"},
		Strategies: []string{"partial-history"},
		Seeds:      []int64{1, 2},
		Repeats:    3,
		SeedStride: 100,
		Toggles:    []Toggle{{Name: "base"}, {Name: "guided", Guided: true}},
	}
	exps := g.Expand(2)
	if len(exps) != 6 {
		t.Fatalf("got %d experiments, want 6 (2 toggles x 3 repeats)", len(exps))
	}
	// Toggle-major: base r0,r1,r2 then guided r0,r1,r2.
	wantSeeds := [][]int64{{1, 2}, {101, 102}, {201, 202}, {1, 2}, {101, 102}, {201, 202}}
	for i, exp := range exps {
		wantToggle := "base"
		if i >= 3 {
			wantToggle = "guided"
		}
		if exp.Toggle.Name != wantToggle || exp.Repeat != i%3 {
			t.Errorf("experiment %d: toggle=%s repeat=%d", i, exp.Toggle.Name, exp.Repeat)
		}
		if !reflect.DeepEqual(exp.Seeds, wantSeeds[i]) {
			t.Errorf("experiment %d: seeds=%v want %v", i, exp.Seeds, wantSeeds[i])
		}
		for _, task := range exp.Tasks {
			if task.Guided != exp.Toggle.Guided {
				t.Errorf("experiment %d: task guided=%v", i, task.Guided)
			}
			if task.Parallel != 2 {
				t.Errorf("experiment %d: task parallel=%d", i, task.Parallel)
			}
		}
	}
	if !reflect.DeepEqual(exps, g.Expand(2)) {
		t.Error("Expand is not deterministic")
	}
}

// TestToggleTaskDeadlineAxis: a per-toggle deadline override propagates
// to every expanded task of that toggle and outranks both the
// coordinator's global Deadline hook and the scaled default.
func TestToggleTaskDeadlineAxis(t *testing.T) {
	g := Grid{
		Name:       "g",
		Targets:    []string{"k8s-59848"},
		Strategies: []string{"partial-history"},
		Seeds:      []int64{1},
		Toggles: []Toggle{
			{Name: "fast"},
			{Name: "slow", TaskDeadlineSec: 900},
		},
	}
	exps := g.Expand(1)
	if len(exps) != 2 {
		t.Fatalf("got %d experiments, want 2", len(exps))
	}
	for _, task := range exps[0].Tasks {
		if task.TaskDeadlineSec != 0 {
			t.Errorf("fast toggle task carries deadline %d, want 0", task.TaskDeadlineSec)
		}
	}
	for _, task := range exps[1].Tasks {
		if task.TaskDeadlineSec != 900 {
			t.Errorf("slow toggle task carries deadline %d, want 900", task.TaskDeadlineSec)
		}
	}

	// Precedence at the supervisor: spec override > global hook > default.
	sup := &Supervisor{Deadline: func(TaskSpec) time.Duration { return 5 * time.Minute }}
	withOverride := exps[1].Tasks[0]
	if got := sup.deadline(withOverride); got != 900*time.Second {
		t.Errorf("spec override: deadline %s, want 900s", got)
	}
	noOverride := exps[0].Tasks[0]
	if got := sup.deadline(noOverride); got != 5*time.Minute {
		t.Errorf("global hook: deadline %s, want 5m", got)
	}
	if got := (&Supervisor{}).deadline(noOverride); got != DefaultTaskDeadline(noOverride) {
		t.Errorf("default: deadline %s, want %s", got, DefaultTaskDeadline(noOverride))
	}
}

func TestExpandDefaults(t *testing.T) {
	g := Grid{
		Name:       "g",
		Targets:    []string{"all"},
		Strategies: []string{"all"},
		Seeds:      []int64{7},
		Toggles:    []Toggle{{Name: "base"}},
	}
	exps := g.Expand(1)
	if len(exps) != 1 {
		t.Fatalf("default repeats: got %d experiments, want 1", len(exps))
	}
	// "all" expands the full matrix: one per-seed task per cell.
	wantTasks := len(AllTargetNames()) * len(AllStrategyNames)
	if len(exps[0].Tasks) != wantTasks {
		t.Errorf("got %d tasks, want %d", len(exps[0].Tasks), wantTasks)
	}
	// Default stride is 1000.
	g.Repeats = 2
	exps = g.Expand(1)
	if got := exps[1].Seeds[0]; got != 1007 {
		t.Errorf("default stride: repeat-1 seed = %d, want 1007", got)
	}
}
