// Package wal provides a write-ahead log with snapshot support — the
// durability substrate under the store and the raftlite replicas. In the
// simulated world "durable" means the data survives process Crash/Restart
// (unlike actor memory); records are still serialized/deserialized through
// encoding/json exactly as an on-disk implementation would, so corruption
// and replay behaviour are real.
package wal

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ErrTruncated is returned when reading an index below the log's start
// (compacted into a snapshot).
var ErrTruncated = errors.New("wal: index truncated into snapshot")

// Record is one durable log entry.
type Record struct {
	Index uint64 // 1-based, dense
	Data  []byte
}

// Log is an append-only record log with metadata slots and prefix
// truncation (for snapshotting). The zero value is an empty log.
type Log struct {
	start    uint64 // index of the first retained record - 1
	records  []Record
	meta     map[string][]byte
	snapshot []byte

	// Appends and Syncs count write operations (cost accounting for
	// benchmarks; every Append is an implicit sync).
	Appends uint64
}

// New returns an empty log.
func New() *Log {
	return &Log{meta: make(map[string][]byte)}
}

// Append serializes v and appends it, returning the new record's index.
func (l *Log) Append(v any) (uint64, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	idx := l.start + uint64(len(l.records)) + 1
	l.records = append(l.records, Record{Index: idx, Data: data})
	l.Appends++
	return idx, nil
}

// AppendRaw appends pre-serialized bytes.
func (l *Log) AppendRaw(data []byte) uint64 {
	idx := l.start + uint64(len(l.records)) + 1
	l.records = append(l.records, Record{Index: idx, Data: append([]byte(nil), data...)})
	l.Appends++
	return idx
}

// LastIndex returns the index of the newest record (0 if empty).
func (l *Log) LastIndex() uint64 { return l.start + uint64(len(l.records)) }

// FirstIndex returns the index of the oldest retained record (start+1), or
// 0 when the log holds no records.
func (l *Log) FirstIndex() uint64 {
	if len(l.records) == 0 {
		return 0
	}
	return l.start + 1
}

// Read returns the record at index, decoding into v (a pointer).
func (l *Log) Read(index uint64, v any) error {
	if index <= l.start {
		return ErrTruncated
	}
	if index > l.LastIndex() {
		return fmt.Errorf("wal: index %d beyond end %d", index, l.LastIndex())
	}
	rec := l.records[index-l.start-1]
	if err := json.Unmarshal(rec.Data, v); err != nil {
		return fmt.Errorf("wal: decode record %d: %w", index, err)
	}
	return nil
}

// Replay calls fn for every retained record in order, decoding into a
// fresh value produced by newV.
func Replay[T any](l *Log, fn func(index uint64, v T) error) error {
	for _, rec := range l.records {
		var v T
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("wal: replay decode %d: %w", rec.Index, err)
		}
		if err := fn(rec.Index, v); err != nil {
			return err
		}
	}
	return nil
}

// TruncateTail discards records with index > last (log repair after a
// divergent append, as raft requires).
func (l *Log) TruncateTail(last uint64) {
	if last < l.start {
		last = l.start
	}
	keep := int(last - l.start)
	if keep < len(l.records) {
		l.records = append([]Record(nil), l.records[:keep]...)
	}
}

// Compact installs a snapshot covering everything up to and including
// index, and drops those records.
func (l *Log) Compact(index uint64, snapshot []byte) {
	if index <= l.start {
		return
	}
	if index > l.LastIndex() {
		index = l.LastIndex()
	}
	drop := int(index - l.start)
	l.records = append([]Record(nil), l.records[drop:]...)
	l.start = index
	l.snapshot = append([]byte(nil), snapshot...)
}

// Snapshot returns the installed snapshot bytes (nil if none) and the
// index it covers.
func (l *Log) Snapshot() ([]byte, uint64) {
	if l.snapshot == nil {
		return nil, 0
	}
	return append([]byte(nil), l.snapshot...), l.start
}

// SetMeta stores a durable metadata value (e.g. raft term and vote).
func (l *Log) SetMeta(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wal: meta %q: %w", key, err)
	}
	l.meta[key] = data
	return nil
}

// GetMeta loads a metadata value into v (a pointer); it reports whether
// the key existed.
func (l *Log) GetMeta(key string, v any) (bool, error) {
	data, ok := l.meta[key]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(data, v); err != nil {
		return true, fmt.Errorf("wal: meta %q: %w", key, err)
	}
	return true, nil
}

// Len returns the number of retained records.
func (l *Log) Len() int { return len(l.records) }
