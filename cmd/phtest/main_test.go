package main

import (
	"testing"
)

func TestSelectTargets(t *testing.T) {
	all, err := selectTargets("all")
	if err != nil || len(all) != 5 {
		t.Fatalf("all: %d targets, err=%v", len(all), err)
	}
	two, err := selectTargets("k8s-59848, cass-op-402")
	if err != nil || len(two) != 2 || two[0].Name != "k8s-59848" || two[1].Name != "cass-op-402" {
		t.Fatalf("subset: %+v err=%v", two, err)
	}
	if _, err := selectTargets("no-such-bug"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestSelectStrategies(t *testing.T) {
	all, err := selectStrategies("all", 1, 10)
	if err != nil || len(all) != 4 {
		t.Fatalf("all: %d strategies, err=%v", len(all), err)
	}
	names := map[string]bool{}
	for _, s := range all {
		names[s.Name()] = true
	}
	for _, want := range []string{"partial-history", "crashtuner", "cofi", "random"} {
		if !names[want] {
			t.Fatalf("missing strategy %q in %v", want, names)
		}
	}
	if _, err := selectStrategies("quantum", 1, 10); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
