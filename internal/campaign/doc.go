// Package campaign is the parallel, coverage-guided campaign execution
// engine on top of internal/core.
//
// core.RunCampaign is the serial reference implementation: it executes a
// strategy's plans strictly in order, one at a time, with one fixed seed.
// Because every simulated execution is a pure function of (workload,
// topology, seed, plan) — the simulation itself is goroutine-free and
// deterministic — campaigns are embarrassingly parallel. This package
// exploits that:
//
//   - Worker pool. An Engine fans plan executions out across Workers
//     goroutines, each building its own fresh cluster. Plan indices are
//     dispatched in order and results land in per-index slots, so the
//     reported CampaignResult is byte-identical to the serial path at any
//     worker count (TestParallelMatchesSerial asserts this). Once a
//     detection is known, no plan ordered after it is started
//     (early cancel), mirroring the serial campaign's stopping rule.
//
//   - Multi-seed sweeps. Config.Seeds runs the whole campaign under
//     several world seeds. Each seed records its own reference trace and
//     generates its own plans, so a seed-2 campaign is an honest
//     re-execution, not a replay of seed-1 coordinates.
//
//   - Coverage-guided prioritization (Config.Guided). Each instrumented
//     execution yields a compact signature: the set of oracle violations
//     folded with a trace-derived state hash (the hashed sequence of
//     delivered event kinds per component — trace.StateHash). Plans are
//     grouped into predicted signature classes; classes that keep
//     producing already-seen signatures are deprioritized and classes
//     still yielding novel coverage are promoted, fuzzer-style.
//
//   - Failure dedup and reporting. Violating executions are bucketed by
//     signature, the engine keeps progress counters (raw executions,
//     executions/sec, coverage classes, novel signatures, detections),
//     and BuildArtifact/WriteArtifacts emit a campaign.json with per-plan
//     outcomes for offline analysis and the bench trajectory.
//
// The sweet spot in the paper's terms (§6.1): a partial-history tool wins
// by exploring fewer, better-chosen perturbations — and by exploring the
// ones it does choose as fast as the hardware allows.
package campaign
