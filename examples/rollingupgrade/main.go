// Rolling upgrade: a step-by-step reproduction of Kubernetes-59848
// (Figure 2 of the paper), "the most severe possible known vulnerability in
// Kubernetes safety guarantees".
//
// The sequence:
//  1. pod p1 runs on node k1; both apiservers know.
//  2. api-2 loses its connection to the store (its cache freezes).
//  3. a rolling upgrade migrates p1 to k2 (through the healthy api-1).
//  4. k1's kubelet restarts and happens to resynchronize with api-2 —
//     which still believes p1 belongs on k1. k1 starts p1 again.
//  5. p1 now runs on two nodes at once: the UniquePod safety oracle fires.
//
// The same scenario is then replayed with the fixed kubelet, which verifies
// its view with a quorum read after restarting, and no violation occurs.
//
// Run with: go run ./examples/rollingupgrade
package main

import (
	"fmt"

	"repro/internal/infra"
	"repro/internal/sim"
)

func main() {
	fmt.Println("== Kubernetes-59848 (paper Figure 2): time traveling kubelet ==")
	fmt.Println()
	run(false)
	fmt.Println()
	run(true)
}

func run(fixedKubelet bool) {
	variant := "stock kubelet (buggy)"
	if fixedKubelet {
		variant = "fixed kubelet (quorum-verified restart sync)"
	}
	fmt.Printf("--- %s ---\n", variant)

	opts := infra.DefaultOptions()
	opts.EnableScheduler = false
	opts.EnableVolumeController = false
	opts.KubeletSafeRestart = fixedKubelet
	c := infra.New(opts)

	// Step 1: p1 runs on k1.
	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(sim.Second)
	fmt.Printf("[%s] step 1: p1 running on k1=%v k2=%v\n",
		c.World.Now(), c.Hosts["k1"].RunningNames(), c.Hosts["k2"].RunningNames())

	// Step 2: api-2 loses connectivity to the store.
	c.World.Network().Partition(infra.APIServerID(1), infra.StoreID)
	fmt.Printf("[%s] step 2: api-2 partitioned from the store (cache frozen at revision %d)\n",
		c.World.Now(), c.APIs[1].CachedRevision())

	// Step 3: rolling upgrade migrates p1 to k2 via api-1.
	c.Admin.MigratePod("p1", "k2", "v2", nil)
	c.RunFor(2 * sim.Second)
	fmt.Printf("[%s] step 3: migration done; k1=%v k2=%v (api-1 rev=%d, api-2 rev=%d)\n",
		c.World.Now(), c.Hosts["k1"].RunningNames(), c.Hosts["k2"].RunningNames(),
		c.APIs[0].CachedRevision(), c.APIs[1].CachedRevision())

	// Step 4: k1's kubelet restarts and resyncs with the stale api-2.
	kl := c.Kubelet["k1"]
	_ = c.World.Crash(kl.ID())
	kl.SetRestartUpstream(infra.APIServerID(1))
	c.RunFor(100 * sim.Millisecond)
	_ = c.World.Restart(kl.ID())
	fmt.Printf("[%s] step 4: kubelet-k1 restarted against stale api-2\n", c.World.Now())
	c.RunFor(3 * sim.Second)

	// Step 5: the verdict.
	fmt.Printf("[%s] step 5: k1=%v k2=%v\n",
		c.World.Now(), c.Hosts["k1"].RunningNames(), c.Hosts["k2"].RunningNames())
	violated := false
	for _, v := range c.Violations() {
		violated = true
		fmt.Printf("          SAFETY VIOLATION: %s\n", v)
	}
	if !violated {
		fmt.Println("          no violation: the restarted kubelet refused to act on the stale view")
	}
}
