package campaign

import (
	"reflect"
	"testing"
)

func dirtyResult() Result {
	return Result{
		Target:   "tgt",
		Strategy: "str",
		Detected: true,
		Stats: Stats{
			Seeds:            2,
			Workers:          8,
			WallNanos:        123456789,
			ExecutionsPerSec: 41.5,
			RawExecutions:    99,
			Detections:       3,
			FailedExecutions: 1,
			HungExecutions:   2,
			Fleet:            &FleetStats{WorkerDeaths: 2, WorkerRespawns: 2, TasksRetried: 1},
		},
		Outcomes: []PlanOutcome{
			{Seed: 1, Index: 0, Class: "crash", Signature: "aa", WallMicros: 500},
			{Seed: 1, Index: 1, Class: "stale", Signature: "bb", WallMicros: 700, Failed: true},
			{Seed: 2, Index: 0, Class: "crash", Signature: "aa", WallMicros: 900, Hung: true},
		},
	}
}

// TestCanonicalizeZeroesEnvironmentFields: exactly the wall-clock
// measurements and the worker-count echo go to zero; the deterministic
// execution set survives untouched.
func TestCanonicalizeZeroesEnvironmentFields(t *testing.T) {
	got := Canonicalize(dirtyResult())
	if got.Stats.Workers != 0 || got.Stats.WallNanos != 0 ||
		got.Stats.ExecutionsPerSec != 0 || got.Stats.RawExecutions != 0 {
		t.Errorf("environment fields not zeroed: %+v", got.Stats)
	}
	// Fleet supervision counters measure the host (which worker died),
	// not the simulation: scrubbed, so chaos-farm and failure-free runs
	// canonicalize to the same bytes.
	if got.Stats.Fleet != nil {
		t.Errorf("fleet counters not scrubbed: %+v", got.Stats.Fleet)
	}
	if got.Stats.Seeds != 2 || got.Stats.Detections != 3 ||
		got.Stats.FailedExecutions != 1 || got.Stats.HungExecutions != 2 {
		t.Errorf("deterministic stats were altered: %+v", got.Stats)
	}
	for i, out := range got.Outcomes {
		if out.WallMicros != 0 {
			t.Errorf("outcome %d still carries wall time: %+v", i, out)
		}
	}
	// Failed/Hung flags and signatures are execution results, not timing.
	if !got.Outcomes[1].Failed || !got.Outcomes[2].Hung || got.Outcomes[0].Signature != "aa" {
		t.Errorf("outcome payload was altered: %+v", got.Outcomes)
	}
	if !got.Detected || got.Target != "tgt" {
		t.Errorf("top-level fields altered: %+v", got)
	}
}

// TestCanonicalizeEquivalence: two results differing only in
// environment-dependent fields canonicalize DeepEqual.
func TestCanonicalizeEquivalence(t *testing.T) {
	a := dirtyResult()
	b := dirtyResult()
	b.Stats.Workers = 1
	b.Stats.WallNanos = 1
	b.Stats.ExecutionsPerSec = 0.001
	b.Stats.RawExecutions = 12345
	b.Stats.Fleet = &FleetStats{WorkerDeaths: 7, TasksRetried: 7}
	for i := range b.Outcomes {
		b.Outcomes[i].WallMicros = int64(i) * 31337
	}
	if !reflect.DeepEqual(Canonicalize(a), Canonicalize(b)) {
		t.Error("equivalent campaigns do not canonicalize equal")
	}
}

// TestCanonicalizeDoesNotMutateInput: the caller's result (and its
// outcome slice) must come back untouched.
func TestCanonicalizeDoesNotMutateInput(t *testing.T) {
	in := dirtyResult()
	_ = Canonicalize(in)
	want := dirtyResult()
	if !reflect.DeepEqual(in, want) {
		t.Errorf("Canonicalize mutated its input:\ngot:  %+v\nwant: %+v", in, want)
	}
}

// TestCanonicalOutcomesPreservesNil: nil in, nil out — a collected-but-
// empty campaign and an uncollected one must stay distinguishable in
// the marshaled artifact.
func TestCanonicalOutcomesPreservesNil(t *testing.T) {
	res := dirtyResult()
	res.Outcomes = nil
	if got := Canonicalize(res); got.Outcomes != nil {
		t.Errorf("nil outcomes became %#v", got.Outcomes)
	}
	res.Outcomes = []PlanOutcome{}
	if got := Canonicalize(res); got.Outcomes == nil || len(got.Outcomes) != 0 {
		t.Errorf("empty outcomes became %#v", got.Outcomes)
	}
}

// TestCanonicalizeArtifact: the artifact form additionally zeroes the
// top-level worker-count echo.
func TestCanonicalizeArtifact(t *testing.T) {
	res := dirtyResult()
	art := BuildArtifact(res, Config{Workers: 8, Seeds: []int64{1, 2}, MaxExecutions: 50})
	if art.Workers == 0 {
		t.Fatal("test premise broken: artifact has no worker echo to scrub")
	}
	got := CanonicalizeArtifact(art)
	if got.Workers != 0 || got.Stats.Workers != 0 || got.Stats.WallNanos != 0 {
		t.Errorf("artifact echoes not zeroed: workers=%d stats=%+v", got.Workers, got.Stats)
	}
	if got.MaxExecutions != art.MaxExecutions || len(got.Seeds) != len(art.Seeds) {
		t.Errorf("config echoes beyond workers were altered: %+v", got)
	}
	for i, out := range got.Outcomes {
		if out.WallMicros != 0 {
			t.Errorf("artifact outcome %d still carries wall time", i)
		}
	}
}
