package campaign

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/trace"
)

// Signature is the compact coverage fingerprint of one execution: the
// sorted set of oracle violations folded with the trace-derived state hash
// (per-component delivered-event sequences plus the committed history —
// see trace.StateHash). Two executions with equal signatures exercised the
// system identically for bug-finding purposes.
type Signature uint64

// String renders the signature as fixed-width hex (the JSON artifact form).
func (s Signature) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// signatureOf folds an execution's violations and its recorded trace into
// one signature. Violation oracle names are sorted so the signature does
// not depend on detection order.
func signatureOf(tr *trace.Trace, violations []oracle.Violation) Signature {
	h := fnv.New64a()
	names := make([]string, 0, len(violations))
	for _, v := range violations {
		names = append(names, v.Oracle)
	}
	sort.Strings(names)
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], tr.StateHash())
	h.Write(buf[:])
	return Signature(h.Sum64())
}

// runInstrumented executes one plan with a trace recorder attached and
// returns both the execution outcome and its coverage signature. It is
// core.RunPlanSeed plus instrumentation; the recorder observes the network
// passively, so the execution itself is unchanged.
func runInstrumented(t core.Target, p core.Plan, seed int64) (core.Execution, Signature) {
	c := t.Build(seed)
	rec := trace.NewRecorder()
	rec.Attach(c.World.Network(), c.Store.Store())
	p.Apply(c)
	t.Workload(c)
	c.RunFor(t.Horizon)
	exec := core.Execution{
		Plan:       p,
		Seed:       seed,
		Violations: c.Violations(),
		Detected:   c.Oracles.Violated(t.Bug),
	}
	return exec, signatureOf(rec.T, exec.Violations)
}

// classOf predicts the signature class of a plan before running it. The
// class deliberately abstracts away fine-grained timing (freeze points,
// occurrence numbers): plans differing only in when they fire tend to land
// in the same coverage class, which is exactly the redundancy the guided
// scheduler wants to skip past.
func classOf(p core.Plan) string {
	switch q := p.(type) {
	case core.GapPlan:
		mode := "blackout"
		if q.Occurrence > 0 {
			mode = "drop"
		}
		return fmt.Sprintf("gap/%s/%s/%s/%s/%s", mode, q.Victim, q.Kind, q.Name, q.Type)
	case core.TimeTravelPlan:
		return fmt.Sprintf("timetravel/%s->%s", q.Component, q.StaleAPI)
	case core.StalenessPlan:
		return fmt.Sprintf("stale/%s", q.Victim)
	case core.CrashPlan:
		return fmt.Sprintf("crash/%s", q.Component)
	case core.PartitionPlan:
		return fmt.Sprintf("partition/%s-%s", q.A, q.B)
	case core.SlowLinkPlan:
		return fmt.Sprintf("slowlink/%s-%s", q.A, q.B)
	case core.FlakyLinkPlan:
		return fmt.Sprintf("flaky/%s-%s/d%d-u%d-r%d", q.A, q.B, q.DropPercent, q.DupPercent, q.ReorderPercent)
	case core.CompactionPressurePlan:
		return fmt.Sprintf("compact/%s", q.Victim)
	case core.SequencePlan:
		subs := make([]string, 0, len(q.Plans))
		for _, sub := range q.Plans {
			subs = append(subs, classOf(sub))
		}
		sort.Strings(subs)
		key := "seq["
		for i, s := range subs {
			if i > 0 {
				key += ","
			}
			key += s
		}
		return key + "]"
	case core.NopPlan:
		return "nop"
	default:
		return "other/" + p.ID()
	}
}
