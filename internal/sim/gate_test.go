package sim

import "testing"

// Delivery gates are the systematic explorer's choice-point surface;
// these tests pin the contract the explorer's drop/delay plans rely on:
// gates rule at delivery time, the first non-Pass verdict wins while
// every gate still sees every arrival, a Delay re-enters the gates on
// re-arrival, and an empty gate list changes nothing.

func TestDeliveryGateDrop(t *testing.T) {
	k, n, _, b := newTestNet(t)
	seen := 0
	n.AddDeliveryGate(DeliveryGateFunc(func(m *Message) Decision {
		seen++
		if m.Payload.(int) == 1 {
			return Decision{Verdict: Drop}
		}
		return Decision{}
	}))
	n.Send("a", "b", "rpc", 0)
	n.Send("a", "b", "rpc", 1)
	n.Send("a", "b", "rpc", 2)
	k.Drain()
	if len(b.got) != 2 || b.got[0].Payload.(int) != 0 || b.got[1].Payload.(int) != 2 {
		t.Fatalf("gated delivery: %v", b.got)
	}
	if seen != 3 {
		t.Fatalf("gate saw %d arrivals, want all 3", seen)
	}
	if st := n.Stats(); st.Dropped != 1 || st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeliveryGateDelayReentersGates(t *testing.T) {
	k, n, _, b := newTestNet(t)
	arrivals := 0
	n.AddDeliveryGate(DeliveryGateFunc(func(m *Message) Decision {
		arrivals++
		// Defer only the first arrival: a stateful gate must not
		// re-match its own deferral on re-arrival.
		if arrivals == 1 {
			return Decision{Verdict: Delay, Delay: 5 * Millisecond}
		}
		return Decision{}
	}))
	n.Send("a", "b", "rpc", 7)
	k.Drain()
	if len(b.got) != 1 {
		t.Fatalf("got %d messages, want 1", len(b.got))
	}
	if arrivals != 2 {
		t.Fatalf("gate ruled %d times, want 2 (arrival + re-arrival)", arrivals)
	}
	if k.Now() != Time(6*Millisecond) {
		t.Fatalf("delivered at %v, want 1ms latency + 5ms gate delay", k.Now())
	}
}

func TestDeliveryGateFirstNonPassWins(t *testing.T) {
	k, n, _, b := newTestNet(t)
	var second int
	n.AddDeliveryGate(DeliveryGateFunc(func(*Message) Decision {
		return Decision{Verdict: Drop}
	}))
	n.AddDeliveryGate(DeliveryGateFunc(func(*Message) Decision {
		second++
		return Decision{Verdict: Delay, Delay: Millisecond} // outvoted by the first gate
	}))
	n.Send("a", "b", "rpc", 0)
	k.Drain()
	if len(b.got) != 0 {
		t.Fatalf("first gate's Drop should win: %v", b.got)
	}
	if second != 1 {
		t.Fatalf("second gate saw %d arrivals, want 1 (all gates see the stream)", second)
	}
}

func TestRemoveDeliveryGates(t *testing.T) {
	k, n, _, b := newTestNet(t)
	n.AddDeliveryGate(DeliveryGateFunc(func(*Message) Decision {
		return Decision{Verdict: Drop}
	}))
	n.RemoveDeliveryGates()
	n.Send("a", "b", "rpc", 0)
	k.Drain()
	if len(b.got) != 1 {
		t.Fatalf("no gates registered, message should deliver: %v", b.got)
	}
}
