package history

// This file implements the epoch-bounded view proposed in §6.2 of the
// paper: break H into epochs and guarantee that if a service sees one event
// of an epoch it sees all events of that epoch. Within an epoch this
// eliminates staleness and observability gaps by construction; the epoch
// size trades divergence bound against coordination cost (benchmarked in
// E7 / internal/epochs).

// Epoch is a contiguous, all-or-nothing-visible slice of a history.
type Epoch struct {
	Index    int   // 0-based epoch number
	FirstRev int64 // first revision in the epoch
	LastRev  int64 // last revision in the epoch
	Events   []Event
}

// Epochs splits h into epochs of size events each (the final epoch may be
// short). size must be >= 1.
func Epochs(h *History, size int) []Epoch {
	if size < 1 {
		size = 1
	}
	events := h.Events()
	var out []Epoch
	for i := 0; i < len(events); i += size {
		j := i + size
		if j > len(events) {
			j = len(events)
		}
		chunk := events[i:j]
		out = append(out, Epoch{
			Index:    len(out),
			FirstRev: chunk[0].Revision,
			LastRev:  chunk[len(chunk)-1].Revision,
			Events:   chunk,
		})
	}
	return out
}

// EpochViolation reports an epoch whose visibility guarantee is broken in a
// partial history: the view contains some but not all of its events.
type EpochViolation struct {
	Epoch    Epoch
	Seen     int // events of the epoch present in the view
	Expected int // events in the epoch
}

// CheckEpochVisibility verifies the §6.2 guarantee: for every epoch of full
// (of the given size), the view either contains the whole epoch or none of
// it. Trailing epochs wholly beyond the view's frontier count as unseen,
// which is permitted (lag is allowed; tearing is not).
func CheckEpochVisibility(view, full *History, size int) []EpochViolation {
	seen := make(map[int64]bool, view.Len())
	for _, e := range view.Events() {
		seen[e.Revision] = true
	}
	var violations []EpochViolation
	for _, ep := range Epochs(full, size) {
		n := 0
		for _, e := range ep.Events {
			if seen[e.Revision] {
				n++
			}
		}
		if n != 0 && n != len(ep.Events) {
			violations = append(violations, EpochViolation{Epoch: ep, Seen: n, Expected: len(ep.Events)})
		}
	}
	return violations
}

// TruncateToEpochBoundary returns the longest prefix of view that ends on
// an epoch boundary of full — i.e. the view an epoch-bounded delivery layer
// would expose to the service instead of a torn view.
func TruncateToEpochBoundary(view, full *History, size int) *History {
	boundaries := make(map[int64]bool)
	for _, ep := range Epochs(full, size) {
		boundaries[ep.LastRev] = true
	}
	out := New()
	pending := make([]Event, 0, size)
	for _, e := range view.Events() {
		pending = append(pending, e)
		if boundaries[e.Revision] {
			for _, p := range pending {
				// Events are already in order; Append cannot fail here.
				_ = out.Append(p)
			}
			pending = pending[:0]
		}
	}
	return out
}
