// Package learn is the trace-learning phase of the partial-history tool:
// it mines per-component read-dependency profiles from the reference trace
// and uses them to make campaigns *cheaper* — pruning plans whose
// perturbation provably cannot intersect anything the victim component
// consumed, collapsing surviving plans into equivalence classes by
// projected observable effect, and ranking the representatives by a
// learned impact score.
//
// The premise comes straight from the paper's Section 7 sketch:
// perturbations targeting history events a component never observes or
// acts on cannot drive it into a staleness / time-travel / gap state, so
// executing them is pure waste. The learned profile answers, per
// component, "which deliveries did you actually consume before acting?" —
// the observation→action table — and every pruning decision is a pure
// function of that table plus the plan, so decisions are deterministic
// and byte-identical across reruns and worker counts.
//
// Soundness: pruning here is *scheduling*, not deletion. A pruned plan is
// deferred behind every kept plan; the campaign engine only executes the
// deferred tail when the kept set found nothing (or under -keep-going),
// and counts any tail detection as an unsound pruning decision
// (Stats.PruningUnsoundDetections). A campaign with pruning therefore can
// never detect *less* than one without — only later, and the regression
// tests pin that it in fact detects strictly earlier.
package learn

import (
	"sort"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Consumption is one delivery a component plausibly consumed: an
// observation tied to the component's subsequent actions.
type Consumption struct {
	// Index is the consumption's position in the model's global consumed
	// list — the deterministic coordinate equivalence classes hash over.
	Index    int
	Delivery trace.Delivery
	// Writes counts the component's writes attributed to this delivery
	// (issued within the reaction window after it).
	Writes int
	// CASWrites counts the attributed writes that update or delete
	// existing objects (api.Update / api.Delete) — the CAS/txn-adjacent
	// action surface where stale reads become lost updates.
	CASWrites int
	// ActedOn reports whether the component ever wrote to the delivered
	// object — the planner's causality approximation.
	ActedOn bool
	// CrossKind reports whether an attributed write mutates a different
	// kind than the delivered object — the signature of a control loop
	// propagating observed state across objects (operator: cluster spec →
	// pods; scheduler: node churn → pod bindings). Cross-kind consumers
	// carry hidden derived state, exactly the divergence the paper's
	// partial-history perturbations exist to expose, so their
	// consumptions outrank same-kind echo writes (kubelet status
	// updates). Background-periodic writes (heartbeats) are excluded from
	// attribution before this is computed; see Mine.
	CrossKind bool
	// MinGap is the virtual-time gap to the nearest attributed write
	// (meaningful only when Writes > 0).
	MinGap sim.Duration
}

// DeletionAdjacent reports whether the consumed delivery is a deletion or
// carries a deletion mark — the highest-value perturbation targets.
func (c Consumption) DeletionAdjacent() bool {
	return c.Delivery.EventType == apiserver.Deleted || c.Delivery.Terminating
}

// Profile is one component's learned read-dependency profile: the
// observation→action table mined from the reference trace.
type Profile struct {
	Component sim.NodeID
	// Deliveries counts every delivery the component received.
	Deliveries int
	// Consumed lists the deliveries the component plausibly consumed, in
	// trace order. A delivery is consumed when the component acted within
	// the reaction window after it, ever wrote to the delivered object, or
	// the delivery is deletion-adjacent (always kept: a *missing* action
	// on a deletion is exactly the observability-gap bug mode).
	Consumed []Consumption
	// Writes / CASWrites count the component's total mutating RPCs and
	// the subset updating or deleting existing objects.
	Writes    int
	CASWrites int
	// Kinds is the sorted set of kinds with at least one consumed
	// delivery.
	Kinds []cluster.Kind
}

// Model is the mined learning substrate for one reference trace.
type Model struct {
	// ReactionWindow bounds observation→action attribution (mirrors
	// trace.CausalGraph).
	ReactionWindow sim.Duration
	// Profiles maps component → its read-dependency profile.
	Profiles map[sim.NodeID]*Profile

	// consumed is the global consumed list in trace order; Consumption
	// .Index points into it.
	consumed []Consumption
}

// DefaultReactionWindow matches trace.NewCausalGraph's default.
const DefaultReactionWindow = 500 * sim.Millisecond

// Background-stream classifier: a component's write stream to one object
// is background-periodic (node heartbeats, lease renewals) when it has at
// least backgroundMinWrites writes spread over at least backgroundMinSpan
// of the trace's write span. Background writes are excluded from
// observation→action attribution: a heartbeat landing in some delivery's
// reaction window is coincidence, not reaction, and counting it would
// mark every delivery to a heartbeating component as consumed. On the
// five seeded targets the separation is wide — heartbeat streams show
// 32–60 writes over ≥97% of the trace, genuine reaction streams ≤5
// writes over ≤51%.
const (
	backgroundMinWrites = 16
	backgroundMinSpan   = 0.8
)

// Mine builds the model from a reference trace. window <= 0 selects
// DefaultReactionWindow. Mining is a pure function of the trace: the same
// trace always yields the same model, byte for byte.
func Mine(ref *trace.Trace, window sim.Duration) *Model {
	if window <= 0 {
		window = DefaultReactionWindow
	}
	m := &Model{ReactionWindow: window, Profiles: make(map[sim.NodeID]*Profile)}

	// Classify background-periodic write streams (heartbeats): these are
	// excluded from attribution below. ActedOn deliberately still counts
	// them — "ever wrote the delivered object" stays conservative.
	type streamKey struct {
		from sim.NodeID
		obj  objKey
	}
	type streamStat struct {
		n           int
		first, last sim.Time
	}
	streams := make(map[streamKey]*streamStat)
	var wFirst, wLast sim.Time
	for i, w := range ref.Writes {
		if i == 0 || w.Time < wFirst {
			wFirst = w.Time
		}
		if w.Time > wLast {
			wLast = w.Time
		}
		k := streamKey{w.From, objKey{w.Kind, w.Name}}
		s := streams[k]
		if s == nil {
			s = &streamStat{first: w.Time, last: w.Time}
			streams[k] = s
		}
		s.n++
		if w.Time > s.last {
			s.last = w.Time
		}
	}
	span := wLast.Sub(wFirst)
	background := func(k streamKey) bool {
		s := streams[k]
		return s != nil && span > 0 && s.n >= backgroundMinWrites &&
			float64(s.last.Sub(s.first)) >= backgroundMinSpan*float64(span)
	}

	// Index attributable writes per component (trace order is
	// virtual-time order).
	type writeIdx struct {
		times []sim.Time
		cas   []bool // api.Update / api.Delete — mutates an existing object
		kinds []cluster.Kind
	}
	writes := make(map[sim.NodeID]*writeIdx)
	acted := make(map[sim.NodeID]map[objKey]bool)
	totals := make(map[sim.NodeID]*struct{ writes, cas int })
	for _, w := range ref.Writes {
		tot := totals[w.From]
		if tot == nil {
			tot = &struct{ writes, cas int }{}
			totals[w.From] = tot
		}
		tot.writes++
		isCAS := w.Method == apiserver.MethodUpdate || w.Method == apiserver.MethodDelete
		if isCAS {
			tot.cas++
		}
		set := acted[w.From]
		if set == nil {
			set = make(map[objKey]bool)
			acted[w.From] = set
		}
		set[objKey{w.Kind, w.Name}] = true
		if background(streamKey{w.From, objKey{w.Kind, w.Name}}) {
			continue // heartbeat traffic: never attributed to a delivery
		}
		wi := writes[w.From]
		if wi == nil {
			wi = &writeIdx{}
			writes[w.From] = wi
		}
		wi.times = append(wi.times, w.Time)
		wi.cas = append(wi.cas, isCAS)
		wi.kinds = append(wi.kinds, w.Kind)
	}

	profile := func(id sim.NodeID) *Profile {
		p := m.Profiles[id]
		if p == nil {
			p = &Profile{Component: id}
			m.Profiles[id] = p
		}
		return p
	}

	for _, d := range ref.Deliveries {
		if d.To == "admin" {
			// The workload driver is the experimenter, not a component
			// under test; the planner never perturbs it either.
			continue
		}
		p := profile(d.To)
		p.Deliveries++

		attributed, casAttributed := 0, 0
		crossKind := false
		minGap := sim.Duration(-1)
		if wi := writes[d.To]; wi != nil {
			lo := sort.Search(len(wi.times), func(i int) bool { return wi.times[i] >= d.Time })
			for i := lo; i < len(wi.times); i++ {
				gap := wi.times[i].Sub(d.Time)
				if gap > window {
					break
				}
				attributed++
				if wi.cas[i] {
					casAttributed++
				}
				if wi.kinds[i] != d.Kind {
					crossKind = true
				}
				if minGap < 0 || gap < minGap {
					minGap = gap
				}
			}
		}
		actedOn := acted[d.To][objKey{d.Kind, d.Name}]
		deletionAdjacent := d.EventType == apiserver.Deleted || d.Terminating
		if attributed == 0 && !actedOn && !deletionAdjacent {
			continue // observed but never consumed
		}
		c := Consumption{
			Index:     len(m.consumed),
			Delivery:  d,
			Writes:    attributed,
			CASWrites: casAttributed,
			ActedOn:   actedOn,
			CrossKind: crossKind,
			MinGap:    minGap,
		}
		m.consumed = append(m.consumed, c)
		p.Consumed = append(p.Consumed, c)
	}

	for id, tot := range totals {
		if id == "admin" {
			continue
		}
		p := profile(id)
		p.Writes = tot.writes
		p.CASWrites = tot.cas
	}
	for _, p := range m.Profiles {
		kinds := map[cluster.Kind]bool{}
		for _, c := range p.Consumed {
			kinds[c.Delivery.Kind] = true
		}
		p.Kinds = make([]cluster.Kind, 0, len(kinds))
		for k := range kinds {
			p.Kinds = append(p.Kinds, k)
		}
		sort.Slice(p.Kinds, func(i, j int) bool { return p.Kinds[i] < p.Kinds[j] })
	}
	return m
}

type objKey struct {
	kind cluster.Kind
	name string
}

// Components returns the profiled components, sorted — the deterministic
// iteration order for reports and telemetry.
func (m *Model) Components() []sim.NodeID {
	out := make([]sim.NodeID, 0, len(m.Profiles))
	for id := range m.Profiles {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConsumedCount returns the total number of consumed deliveries across all
// components.
func (m *Model) ConsumedCount() int { return len(m.consumed) }

// ConsumedDelivery reports whether a specific delivery — identified by
// its receiver-side coordinate (To, Kind, Name, EventType, Occurrence) —
// is in the receiver's consumed set. This is the explorer's
// delivery-independence oracle: the consumed set over-approximates the
// deliveries a component's behavior can depend on (attribution window OR
// acted-on object OR deletion-adjacent), so a delivery outside it
// provably commutes with the component's actions under the mined model,
// and perturbing its schedule cannot change any oracle-visible state.
func (m *Model) ConsumedDelivery(d trace.Delivery) bool {
	p := m.Profiles[d.To]
	if p == nil {
		return false
	}
	for _, c := range p.Consumed {
		e := c.Delivery
		if e.Kind == d.Kind && e.Name == d.Name && e.EventType == d.EventType && e.Occurrence == d.Occurrence {
			return true
		}
	}
	return false
}

// consumedTo returns the indices of consumed deliveries addressed to a
// component within [from, until] (until == 0 means "until the end"),
// widened by the reaction window on both sides — the conservative slack
// every surface computation applies.
func (m *Model) consumedTo(comp sim.NodeID, from, until sim.Time) []int {
	return m.scan(from, until, func(c Consumption) bool { return c.Delivery.To == comp })
}

// consumedVia returns the indices of consumed deliveries that flowed
// *through* a node (From == via) within the widened window — the surface
// of apiserver-freezing and store-link plans.
func (m *Model) consumedVia(via sim.NodeID, from, until sim.Time) []int {
	return m.scan(from, until, func(c Consumption) bool { return c.Delivery.From == via })
}

// consumedOnLink returns the indices of consumed deliveries carried by the
// (a, b) link in either direction within the widened window.
func (m *Model) consumedOnLink(a, b sim.NodeID, from, until sim.Time) []int {
	return m.scan(from, until, func(c Consumption) bool {
		d := c.Delivery
		return (d.From == a && d.To == b) || (d.From == b && d.To == a)
	})
}

func (m *Model) scan(from, until sim.Time, match func(Consumption) bool) []int {
	lo := from.Add(-m.ReactionWindow)
	var out []int
	for _, c := range m.consumed {
		t := c.Delivery.Time
		if t < lo {
			continue
		}
		if until > 0 && t > until.Add(m.ReactionWindow) {
			break // consumed list is in trace (time) order
		}
		if match(c) {
			out = append(out, c.Index)
		}
	}
	return out
}
