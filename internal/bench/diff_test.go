package bench

import (
	"reflect"
	"testing"
)

func baseE5() E5 {
	return E5{
		Schema:        SchemaE5,
		MaxExecutions: 400,
		Cells: []Cell{
			{Target: "k8s-59848", Oracle: "UniquePod", Strategy: "partial-history", Detected: true, Executions: 98, PlansTotal: 210},
			{Target: "cass-op-400", Oracle: "ScaleDownCompletes", Strategy: "random", Detected: false, Executions: 400, PlansTotal: 400},
		},
		Learned: []LearnedCell{
			{Target: "k8s-59848", Detected: true, Executions: 40, PlansTotal: 210, PlansPruned: 100},
		},
	}
}

func TestDiffEntriesIdentical(t *testing.T) {
	if entries := DiffEntries(baseE5(), baseE5()); entries != nil {
		t.Fatalf("identical artifacts produced entries: %+v", entries)
	}
	if lines := Diff(baseE5(), baseE5()); lines != nil {
		t.Fatalf("identical artifacts produced lines: %v", lines)
	}
}

func TestDiffEntriesValueDrift(t *testing.T) {
	fresh := baseE5()
	fresh.Cells[0].Executions = 99
	fresh.Learned[0].Detected = false
	entries := DiffEntries(baseE5(), fresh)
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(entries), entries)
	}
	want := []DiffEntry{
		{Path: ".cells[0].executions", Kind: "value", Committed: "98", Fresh: "99"},
		{Path: ".learned[0].detected", Kind: "value", Committed: "true", Fresh: "false"},
	}
	if !reflect.DeepEqual(entries, want) {
		t.Errorf("entries:\ngot:  %+v\nwant: %+v", entries, want)
	}
	// The human rendering localizes the same fields.
	lines := Diff(baseE5(), fresh)
	if len(lines) != 2 || lines[0] != ".cells[0].executions: committed 98, fresh 99" {
		t.Errorf("human lines: %v", lines)
	}
}

func TestDiffEntriesLengthDrift(t *testing.T) {
	fresh := baseE5()
	fresh.Cells = fresh.Cells[:1]
	entries := DiffEntries(baseE5(), fresh)
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1: %+v", len(entries), entries)
	}
	e := entries[0]
	if e.Path != ".cells" || e.Kind != "length" || e.Committed != "2" || e.Fresh != "1" {
		t.Errorf("length entry wrong: %+v", e)
	}
	if got := e.String(); got != ".cells: length 2 (committed) vs 1 (fresh)" {
		t.Errorf("rendering: %q", got)
	}
}

func TestDiffEntriesAcrossTypes(t *testing.T) {
	// E5 vs E6 share no structure; the diff must localize type changes
	// rather than panic or stay silent.
	entries := DiffEntries(baseE5(), E6{Schema: SchemaE6, MaxExecutions: 400})
	if len(entries) == 0 {
		t.Fatal("cross-type diff found nothing")
	}
	for _, e := range entries {
		if e.Kind == "" {
			t.Errorf("entry without kind: %+v", e)
		}
	}
}
