package farm

import (
	"encoding/json"
	"fmt"
	"os"
)

// Toggle is one plan-family / engine-mode configuration of a grid — a
// named combination of the engine's feature switches. An experiment
// grid typically compares toggles ("baseline" vs "guided" vs
// "guided+prune") over the same targets and seeds.
type Toggle struct {
	Name     string `json:"name"`
	Guided   bool   `json:"guided,omitempty"`
	Prune    bool   `json:"prune,omitempty"`
	Ranked   bool   `json:"ranked,omitempty"`
	Snapshot bool   `json:"snapshot,omitempty"`
	Explain  bool   `json:"explain,omitempty"`
	// TaskDeadlineSec overrides the supervisor's per-task completion
	// deadline for every task of this toggle, in seconds (0 = inherit
	// the farm-wide -task-deadline, or the scaled default). A grid axis
	// for deadline experiments: slow toggles (full replay, big event
	// budgets) can buy wall clock without loosening the watchdog on the
	// fast ones.
	TaskDeadlineSec int `json:"task_deadline_sec,omitempty"`
}

// Grid is a declarative experiment specification: the full cross
// product targets × strategies × toggles × repeats, swept over Seeds.
// Repeat r shifts every seed by r*SeedStride, so repeats measure
// seed-sensitivity with non-overlapping worlds while staying fully
// deterministic — the same grid file always expands to the same
// experiments.
type Grid struct {
	Name       string   `json:"name"`
	Targets    []string `json:"targets"`    // target names, or ["all"]
	Strategies []string `json:"strategies"` // strategy names, or ["all"]
	Seeds      []int64  `json:"seeds"`
	// Repeats is how many seed-shifted repetitions to run (default 1).
	Repeats int `json:"repeats,omitempty"`
	// SeedStride is the per-repeat seed shift (default 1000).
	SeedStride    int64 `json:"seed_stride,omitempty"`
	MaxExecutions int   `json:"max_executions,omitempty"`
	RandomSeed    int64 `json:"random_seed,omitempty"`
	RandomN       int   `json:"random_n,omitempty"`
	// KeepGoing runs every plan even after detection (full bucket
	// census instead of executions-to-first-detection).
	KeepGoing bool     `json:"keep_going,omitempty"`
	Toggles   []Toggle `json:"toggles"`
}

// Experiment is one expanded grid point: a (toggle, repeat) pair with
// its shifted seed sweep and the farm tasks that execute it. Task IDs
// are local to the experiment; the caller renumbers when flattening
// several experiments into one coordinator run.
type Experiment struct {
	Toggle Toggle
	Repeat int
	Seeds  []int64
	Tasks  []TaskSpec
}

// LoadGrid reads and validates a grid file.
func LoadGrid(path string) (Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Grid{}, fmt.Errorf("grid: read %s: %w", path, err)
	}
	var g Grid
	if err := json.Unmarshal(data, &g); err != nil {
		return Grid{}, fmt.Errorf("grid: parse %s: %w", path, err)
	}
	if err := g.validate(); err != nil {
		return Grid{}, fmt.Errorf("grid %s: %w", path, err)
	}
	return g, nil
}

func (g *Grid) validate() error {
	if g.Name == "" {
		return fmt.Errorf("missing name")
	}
	if len(g.Targets) == 0 || len(g.Strategies) == 0 {
		return fmt.Errorf("targets and strategies must be non-empty")
	}
	if len(g.Seeds) == 0 {
		return fmt.Errorf("seeds must be non-empty")
	}
	if len(g.Toggles) == 0 {
		return fmt.Errorf("toggles must be non-empty")
	}
	names := map[string]bool{}
	for _, t := range g.Toggles {
		if t.Name == "" {
			return fmt.Errorf("every toggle needs a name")
		}
		if names[t.Name] {
			return fmt.Errorf("duplicate toggle %q", t.Name)
		}
		names[t.Name] = true
		if err := ValidateFlags(FlagRules{
			Prune: t.Prune, Ranked: t.Ranked,
			Explain: t.Explain, Snapshot: t.Snapshot,
		}); err != nil {
			return fmt.Errorf("toggle %q: %w", t.Name, err)
		}
		if t.TaskDeadlineSec < 0 {
			return fmt.Errorf("toggle %q: task_deadline_sec must be >= 0", t.Name)
		}
	}
	if g.Repeats < 0 {
		return fmt.Errorf("repeats must be >= 0")
	}
	return nil
}

// targetNames resolves the grid's target list, expanding "all".
func (g Grid) targetNames() []string {
	if len(g.Targets) == 1 && g.Targets[0] == "all" {
		return AllTargetNames()
	}
	return g.Targets
}

// strategyNames resolves the grid's strategy list, expanding "all".
func (g Grid) strategyNames() []string {
	if len(g.Strategies) == 1 && g.Strategies[0] == "all" {
		return AllStrategyNames
	}
	return g.Strategies
}

// Expand turns the grid into its experiments, in deterministic order:
// toggle-major, then repeat. parallel is the per-worker in-process pool
// width every task runs with.
func (g Grid) Expand(parallel int) []Experiment {
	repeats := g.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	stride := g.SeedStride
	if stride == 0 {
		stride = 1000
	}
	targets, strategies := g.targetNames(), g.strategyNames()
	var out []Experiment
	for _, tog := range g.Toggles {
		for r := 0; r < repeats; r++ {
			seeds := make([]int64, len(g.Seeds))
			for i, s := range g.Seeds {
				seeds[i] = s + int64(r)*stride
			}
			base := TaskSpec{
				Seeds:           seeds,
				MaxExecutions:   g.MaxExecutions,
				Parallel:        parallel,
				TaskDeadlineSec: tog.TaskDeadlineSec,
				Guided:          tog.Guided,
				Prune:           tog.Prune,
				Ranked:          tog.Ranked,
				Snapshot:        tog.Snapshot,
				Explain:         tog.Explain,
				KeepGoing:       g.KeepGoing,
				RandomSeed:      g.RandomSeed,
				RandomN:         g.RandomN,
			}
			out = append(out, Experiment{
				Toggle: tog,
				Repeat: r,
				Seeds:  seeds,
				Tasks:  Plan(targets, strategies, base),
			})
		}
	}
	return out
}
