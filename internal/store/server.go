package store

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/sim"
)

// RPC method names served by Server.
const (
	MethodRange          = "store.Range"
	MethodGet            = "store.Get"
	MethodPut            = "store.Put"
	MethodDelete         = "store.Delete"
	MethodTxn            = "store.Txn"
	MethodWatch          = "store.Watch"
	MethodCancelWatch    = "store.CancelWatch"
	MethodEventsSince    = "store.EventsSince"
	MethodLeaseGrant     = "store.LeaseGrant"
	MethodLeaseKeepAlive = "store.LeaseKeepAlive"
	MethodLeaseRevoke    = "store.LeaseRevoke"
)

// KindWatchPush is the message kind of server->subscriber event pushes;
// perturbation interceptors match on it to create staleness and gaps.
const KindWatchPush = "store.watch-push"

// Request/response bodies. These cross the simulated network by reference;
// all slices are freshly allocated per message, so receivers may retain
// them.
type (
	// RangeRequest lists live keys under Prefix.
	RangeRequest struct{ Prefix string }
	// RangeResponse carries a consistent snapshot and its revision.
	RangeResponse struct {
		KVs      []KV
		Revision int64
	}
	// GetRequest reads one key.
	GetRequest struct{ Key string }
	// GetResponse carries the value if Found.
	GetResponse struct {
		KV       KV
		Found    bool
		Revision int64
	}
	// PutRequest writes Key=Value (optionally bound to a lease).
	PutRequest struct {
		Key   string
		Value []byte
		Lease LeaseID
	}
	// PutResponse reports the commit revision.
	PutResponse struct{ Revision int64 }
	// DeleteRequest removes a key.
	DeleteRequest struct{ Key string }
	// DeleteResponse reports the commit revision.
	DeleteResponse struct{ Revision int64 }
	// TxnRequest is a guarded atomic batch.
	TxnRequest struct {
		Guards    []Cmp
		OnSuccess []Op
		OnFailure []Op
	}
	// TxnResponse reports which branch ran.
	TxnResponse struct {
		Succeeded bool
		Revision  int64
	}
	// WatchRequest subscribes the caller to events under Prefix after
	// StartRev. SubID is chosen by the caller to demultiplex pushes.
	WatchRequest struct {
		Prefix   string
		StartRev int64
		SubID    uint64
	}
	// WatchResponse acknowledges the subscription at Revision.
	WatchResponse struct{ Revision int64 }
	// CancelWatchRequest removes a subscription.
	CancelWatchRequest struct{ SubID uint64 }
	// EventsSinceRequest pulls retained events after Rev under Prefix.
	EventsSinceRequest struct {
		Prefix string
		Rev    int64
	}
	// EventsSinceResponse carries the pulled events.
	EventsSinceResponse struct {
		Events   []history.Event
		Revision int64
	}
	// LeaseGrantRequest creates a lease with the given TTL.
	LeaseGrantRequest struct{ TTL int64 }
	// LeaseGrantResponse returns the new lease.
	LeaseGrantResponse struct{ Lease Lease }
	// LeaseKeepAliveRequest renews a lease.
	LeaseKeepAliveRequest struct{ ID LeaseID }
	// LeaseKeepAliveResponse returns the renewed lease.
	LeaseKeepAliveResponse struct{ Lease Lease }
	// LeaseRevokeRequest revokes a lease.
	LeaseRevokeRequest struct{ ID LeaseID }
	// LeaseRevokeResponse lists keys deleted by the revocation.
	LeaseRevokeResponse struct{ DeletedKeys []string }
	// WatchPush is the payload of KindWatchPush messages.
	WatchPush struct {
		SubID  uint64
		Events []history.Event
	}
)

type subscription struct {
	subID  uint64
	client sim.NodeID
	handle WatchHandle
}

// Server exposes a Store as a simulated network actor. It is the "etcd
// endpoint" apiservers connect to.
//
// Crash semantics: the store's data is durable (etcd persists via WAL), so
// a crash only stops serving and severs watch subscriptions; data survives
// into Restart. Subscribers must re-list and re-watch — and whether they do
// so correctly is precisely what partial-history testing probes.
type Server struct {
	id    sim.NodeID
	world *sim.World
	st    *Store
	rpc   *sim.RPCServer
	subs  map[string]*subscription // key: client/subID
	down  bool

	leaseTick sim.Duration
	// leaseTickFn caches the leaseTickFire method value (the tick re-arms
	// itself constantly; binding the method fresh each time allocates).
	leaseTickFn func()

	// pushSlab arena-allocates the per-watcher copies of notify batches
	// (the store mutates its own batch buffer after notifying, so each
	// push needs a private copy — slab-carved rather than one make each).
	pushSlab sim.Slab[history.Event]
}

// NewServer wires a store actor into the world under the given node ID.
func NewServer(w *sim.World, id sim.NodeID, st *Store) *Server {
	s := &Server{
		id:        id,
		world:     w,
		st:        st,
		subs:      make(map[string]*subscription),
		leaseTick: 50 * sim.Millisecond,
	}
	s.rpc = sim.NewRPCServer(w.Network(), id)
	s.register()
	w.Network().Register(id, s)
	w.AddProcess(s)
	s.scheduleLeaseTick()
	return s
}

// ID returns the server's node ID.
func (s *Server) ID() sim.NodeID { return s.id }

// Store returns the underlying store (tests and oracles read ground truth
// through it directly, bypassing the network).
func (s *Server) Store() *Store { return s.st }

// Crash stops serving and drops all watch subscriptions.
func (s *Server) Crash() {
	s.down = true
	for _, sub := range s.subs {
		sub.handle.Cancel()
	}
	s.subs = make(map[string]*subscription)
}

// Restart resumes serving. Durable store state is retained.
func (s *Server) Restart() {
	s.down = false
	s.scheduleLeaseTick()
}

// HandleMessage implements sim.Handler.
func (s *Server) HandleMessage(m *sim.Message) {
	if s.down {
		return
	}
	s.st.SetNow(int64(s.world.Now()))
	s.rpc.HandleRequest(m)
}

func (s *Server) scheduleLeaseTick() {
	if s.leaseTickFn == nil {
		s.leaseTickFn = s.leaseTickFire
	}
	s.world.Kernel().ScheduleTagged(s.leaseTick,
		sim.EventTag{Owner: string(s.id), Kind: "leasetick"}, s.leaseTickFn)
}

// leaseTickFire is the lease-expiry timer body; scheduleLeaseTick arms it
// and a restored world re-arms it from its snapshot tag.
func (s *Server) leaseTickFire() {
	if s.down {
		return
	}
	s.st.SetNow(int64(s.world.Now()))
	s.st.ExpireDue()
	s.scheduleLeaseTick()
}

func subKey(client sim.NodeID, subID uint64) string {
	return fmt.Sprintf("%s/%d", client, subID)
}

func (s *Server) register() {
	s.rpc.Handle(MethodRange, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*RangeRequest)
		kvs, rev := s.st.Range(req.Prefix)
		return &RangeResponse{KVs: kvs, Revision: rev}, nil
	})
	s.rpc.Handle(MethodGet, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*GetRequest)
		kv, rev, found := s.st.Get(req.Key)
		return &GetResponse{KV: kv, Found: found, Revision: rev}, nil
	})
	s.rpc.Handle(MethodPut, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*PutRequest)
		if req.Lease != 0 {
			rev, err := s.st.PutWithLease(req.Key, req.Value, req.Lease)
			if err != nil {
				return nil, err
			}
			return &PutResponse{Revision: rev}, nil
		}
		return &PutResponse{Revision: s.st.Put(req.Key, req.Value)}, nil
	})
	s.rpc.Handle(MethodDelete, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*DeleteRequest)
		rev, err := s.st.Delete(req.Key)
		if err != nil {
			return nil, err
		}
		return &DeleteResponse{Revision: rev}, nil
	})
	s.rpc.Handle(MethodTxn, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*TxnRequest)
		res, err := s.st.Txn(req.Guards, req.OnSuccess, req.OnFailure)
		if err != nil && err != ErrTxnFailed {
			return nil, err
		}
		return &TxnResponse{Succeeded: res.Succeeded, Revision: res.Revision}, nil
	})
	s.rpc.Handle(MethodWatch, func(from sim.NodeID, body any) (any, error) {
		req := body.(*WatchRequest)
		subID, client := req.SubID, from
		h, err := s.st.Watch(req.Prefix, req.StartRev, func(events []history.Event) {
			cp := s.pushSlab.Clone(events)
			s.world.Network().Send(s.id, client, KindWatchPush, &WatchPush{SubID: subID, Events: cp})
		})
		if err != nil {
			return nil, err
		}
		key := subKey(from, req.SubID)
		if old, ok := s.subs[key]; ok {
			old.handle.Cancel()
		}
		s.subs[key] = &subscription{subID: req.SubID, client: from, handle: h}
		return &WatchResponse{Revision: s.st.Revision()}, nil
	})
	s.rpc.Handle(MethodCancelWatch, func(from sim.NodeID, body any) (any, error) {
		req := body.(*CancelWatchRequest)
		key := subKey(from, req.SubID)
		if sub, ok := s.subs[key]; ok {
			sub.handle.Cancel()
			delete(s.subs, key)
		}
		return &struct{}{}, nil
	})
	s.rpc.Handle(MethodEventsSince, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*EventsSinceRequest)
		events, err := s.st.EventsSince(req.Prefix, req.Rev)
		if err != nil {
			return nil, err
		}
		return &EventsSinceResponse{Events: events, Revision: s.st.Revision()}, nil
	})
	s.rpc.Handle(MethodLeaseGrant, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*LeaseGrantRequest)
		return &LeaseGrantResponse{Lease: s.st.GrantLease(req.TTL)}, nil
	})
	s.rpc.Handle(MethodLeaseKeepAlive, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*LeaseKeepAliveRequest)
		l, err := s.st.KeepAlive(req.ID)
		if err != nil {
			return nil, err
		}
		return &LeaseKeepAliveResponse{Lease: l}, nil
	})
	s.rpc.Handle(MethodLeaseRevoke, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*LeaseRevokeRequest)
		keys, err := s.st.RevokeLease(req.ID)
		if err != nil {
			return nil, err
		}
		return &LeaseRevokeResponse{DeletedKeys: keys}, nil
	})
}
