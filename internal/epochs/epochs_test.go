package epochs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/history"
)

func mkEvents(n int) []history.Event {
	out := make([]history.Event, n)
	for i := range out {
		out[i] = history.Event{
			Revision: int64(i + 1),
			Type:     history.Put,
			Key:      fmt.Sprintf("/k%d", i%5),
			Value:    []byte{byte(i)},
			Time:     int64(i) * 10,
		}
	}
	return out
}

func fetcherFor(events []history.Event) Fetcher {
	return func(from, to int64) []history.Event {
		var out []history.Event
		for _, e := range events {
			if e.Revision >= from && e.Revision <= to {
				out = append(out, e)
			}
		}
		return out
	}
}

func TestLosslessStreamDeliversEpochs(t *testing.T) {
	events := mkEvents(12)
	var got [][]history.Event
	b := NewBatcher(Config{Size: 4}, nil, func(ep []history.Event) {
		got = append(got, append([]history.Event(nil), ep...))
	})
	for _, e := range events {
		b.Offer(e)
	}
	if len(got) != 3 {
		t.Fatalf("epochs delivered = %d, want 3", len(got))
	}
	for i, ep := range got {
		if len(ep) != 4 {
			t.Fatalf("epoch %d size = %d", i, len(ep))
		}
		for j, e := range ep {
			want := int64(i*4 + j + 1)
			if e.Revision != want {
				t.Fatalf("epoch %d event %d revision = %d, want %d", i, j, e.Revision, want)
			}
		}
	}
	st := b.Stats()
	if st.EpochsDelivered != 3 || st.EventsOut != 12 || st.Recoveries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGapWithoutFetcherHoldsDelivery(t *testing.T) {
	events := mkEvents(8)
	delivered := 0
	b := NewBatcher(Config{Size: 4}, nil, func(ep []history.Event) { delivered += len(ep) })
	for _, e := range events {
		if e.Revision == 2 {
			continue // lost event inside epoch 0
		}
		b.Offer(e)
	}
	// Nothing may be delivered: epoch 0 is torn and epoch 1 must wait its
	// turn. Holding is the all-or-nothing guarantee.
	if delivered != 0 {
		t.Fatalf("delivered %d events from a torn stream", delivered)
	}
}

func TestGapTriggersRecovery(t *testing.T) {
	events := mkEvents(8)
	var got []int64
	b := NewBatcher(Config{Size: 4}, fetcherFor(events), func(ep []history.Event) {
		for _, e := range ep {
			got = append(got, e.Revision)
		}
	})
	for _, e := range events {
		if e.Revision == 2 || e.Revision == 3 {
			continue // lost events
		}
		b.Offer(e)
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d events, want 8 (recovered)", len(got))
	}
	for i, rev := range got {
		if rev != int64(i+1) {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
	if b.Stats().Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", b.Stats().Recoveries)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	events := mkEvents(4)
	delivered := 0
	b := NewBatcher(Config{Size: 4}, nil, func(ep []history.Event) { delivered += len(ep) })
	for _, e := range events {
		b.Offer(e)
		b.Offer(e) // duplicate (at-least-once stream)
	}
	if delivered != 4 {
		t.Fatalf("delivered = %d, want 4", delivered)
	}
	if b.Stats().EventsIn != 8 {
		t.Fatalf("eventsIn = %d", b.Stats().EventsIn)
	}
}

func TestReorderedStreamStillEpochAtomic(t *testing.T) {
	events := mkEvents(8)
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(len(events))
	var got []int64
	b := NewBatcher(Config{Size: 4}, nil, func(ep []history.Event) {
		for _, e := range ep {
			got = append(got, e.Revision)
		}
	})
	for _, idx := range perm {
		b.Offer(events[idx])
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d, want 8", len(got))
	}
	for i, rev := range got {
		if rev != int64(i+1) {
			t.Fatalf("delivery not in revision order: %v", got)
		}
	}
}

func TestFlushTrailingPartialEpoch(t *testing.T) {
	events := mkEvents(10) // size 4: epochs 0,1 full; epoch 2 has revs 9,10
	var got []int64
	b := NewBatcher(Config{Size: 4}, fetcherFor(events), func(ep []history.Event) {
		for _, e := range ep {
			got = append(got, e.Revision)
		}
	})
	for _, e := range events {
		b.Offer(e)
	}
	if len(got) != 8 {
		t.Fatalf("pre-flush delivered = %d, want 8", len(got))
	}
	if err := b.Flush(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("post-flush delivered = %d, want 10", len(got))
	}
	// Idempotent flush.
	if err := b.Flush(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatal("double flush re-delivered")
	}
}

func TestFlushWithoutFetcherFailsOnGap(t *testing.T) {
	events := mkEvents(6)
	b := NewBatcher(Config{Size: 4}, nil, func([]history.Event) {})
	for _, e := range events {
		if e.Revision == 5 {
			continue
		}
		b.Offer(e)
	}
	if err := b.Flush(6); err == nil {
		t.Fatal("flush of torn trailing epoch should fail without fetcher")
	}
}

// Property: for any drop pattern, with a fetcher the batcher delivers the
// full prefix in order and epoch-atomically (checked via the history
// package's epoch visibility checker).
func TestPropertyEpochAtomicUnderDrops(t *testing.T) {
	f := func(seed int64, sizeRaw, nRaw uint8) bool {
		size := int64(sizeRaw%6) + 1
		n := int(nRaw%40) + int(size) // at least one epoch
		events := mkEvents(n)
		rng := rand.New(rand.NewSource(seed))

		full := history.New()
		for _, e := range events {
			_ = full.Append(e)
		}

		view := history.New()
		b := NewBatcher(Config{Size: size}, fetcherFor(events), func(ep []history.Event) {
			for _, e := range ep {
				if err := view.Append(e); err != nil {
					panic(err)
				}
			}
		})
		for _, e := range events {
			if rng.Float64() < 0.3 {
				continue // drop
			}
			b.Offer(e)
		}
		// Everything delivered must be a gap-free prefix aligned to epoch
		// boundaries.
		if view.Len() > 0 {
			if view.FirstRevision() != 1 {
				return false
			}
			if view.Len() != int(view.LastRevision()) {
				return false // gap inside delivered prefix
			}
			if view.LastRevision()%size != 0 {
				return false // torn epoch
			}
		}
		return len(history.CheckEpochVisibility(view, full, int(size))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
