// Package workload defines the test workloads and bug targets of the
// evaluation: for each of the five bugs the paper's tool handles
// (Kubernetes-59848, Kubernetes-56261, cassandra-operator-398/-400/-402) it
// provides a deterministic cluster builder, a driving workload, and the
// oracle that defines detection — the inputs to core.RunCampaign.
package workload

import (
	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/kubelet"
	"repro/internal/operators/cassandra"
	"repro/internal/oracle"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

// at schedules fn at absolute virtual time t on the cluster's kernel.
func at(c *infra.Cluster, t sim.Duration, fn func()) {
	c.World.Kernel().At(sim.Time(t), fn)
}

// Target59848 is the Figure 2 bug: a kubelet that restarts against a stale
// apiserver re-runs a migrated pod. Workload: run a pod on k1, then migrate
// it to k2 (a rolling upgrade step). The safety oracle is UniquePod.
//
// Note the workload contains no faults at all — staleness, the restart,
// and the upstream switch all come from the perturbation plan.
func Target59848() core.Target {
	build := func(seed int64) *infra.Cluster {
		opts := infra.DefaultOptions()
		opts.Seed = seed
		opts.EnableScheduler = false
		opts.EnableVolumeController = false
		return infra.New(opts)
	}
	return core.Target{
		Name:  "k8s-59848",
		Bug:   oracle.NameUniquePod,
		Build: build,
		Workload: func(c *infra.Cluster) {
			at(c, 500*sim.Millisecond, func() { c.Admin.CreatePod("p1", "k1", "v1", nil) })
			at(c, 2*sim.Second, func() { c.Admin.MigratePod("p1", "k2", "v2", nil) })
		},
		Horizon: 9 * sim.Second,
		Topology: core.Topology{
			APIServers:  []sim.NodeID{infra.APIServerID(0), infra.APIServerID(1)},
			Restartable: []sim.NodeID{kubelet.NodeID("k1"), kubelet.NodeID("k2")},
			Resteerable: []sim.NodeID{kubelet.NodeID("k1"), kubelet.NodeID("k2")},
		},
	}
}

// Target56261 is the scheduler observability-gap bug: a missed node
// deletion leaves a dead node in the scheduler cache and pod placement
// livelocks. Workload: delete a node, then submit a pod.
func Target56261() core.Target {
	build := func(seed int64) *infra.Cluster {
		opts := infra.DefaultOptions()
		opts.Seed = seed
		opts.Nodes = []string{"n1", "n2"}
		opts.EnableVolumeController = false
		return infra.New(opts)
	}
	return core.Target{
		Name:  "k8s-56261",
		Bug:   oracle.NameSchedulerProgress,
		Build: build,
		Workload: func(c *infra.Cluster) {
			at(c, sim.Second, func() { c.Admin.DeleteNode("n1", nil) })
			at(c, 1500*sim.Millisecond, func() { c.Admin.CreatePod("job-1", "", "v1", nil) })
		},
		Horizon: 8 * sim.Second,
		Topology: core.Topology{
			APIServers:  []sim.NodeID{infra.APIServerID(0), infra.APIServerID(1)},
			Restartable: []sim.NodeID{scheduler.ID, kubelet.NodeID("n2")},
		},
	}
}

// cassOptions builds the shared Cassandra cluster configuration (stock,
// i.e. all three bugs present).
func cassOptions(seed int64) infra.Options {
	opts := infra.DefaultOptions()
	opts.Seed = seed
	opts.Nodes = []string{"k1", "k2", "k3"}
	opts.EnableVolumeController = false
	opts.Cassandra = &infra.CassandraOptions{Name: "cass", Fixes: cassandra.Fixes{}}
	return opts
}

func cassTopology() core.Topology {
	return core.Topology{
		APIServers: []sim.NodeID{infra.APIServerID(0), infra.APIServerID(1)},
		Restartable: []sim.NodeID{
			cassandra.OperatorID,
			kubelet.NodeID("k1"), kubelet.NodeID("k2"), kubelet.NodeID("k3"),
		},
		Resteerable: []sim.NodeID{cassandra.OperatorID},
	}
}

// TargetCass398 is cassandra-operator-398: a missed deletionTimestamp
// observation orphans the decommissioned member's PVC. Workload: bring up
// two members, scale down to one.
func TargetCass398() core.Target {
	return core.Target{
		Name:  "cass-op-398",
		Bug:   oracle.NameNoOrphanPVC,
		Build: func(seed int64) *infra.Cluster { return infra.New(cassOptions(seed)) },
		Workload: func(c *infra.Cluster) {
			at(c, 500*sim.Millisecond, func() { c.Admin.CreateCassandra("cass", 2, nil) })
			at(c, 4*sim.Second, func() { c.Admin.ScaleCassandra("cass", 1, nil) })
		},
		Horizon:  12 * sim.Second,
		Topology: cassTopology(),
	}
}

// TargetCass400 is cassandra-operator-400: a stale membership view makes
// the scale-down decommission the wrong member (or skip it), wedging the
// scale-down. Workload: scale 2 → 3 → 2.
func TargetCass400() core.Target {
	return core.Target{
		Name:  "cass-op-400",
		Bug:   oracle.NameScaleDownCompletes,
		Build: func(seed int64) *infra.Cluster { return infra.New(cassOptions(seed)) },
		Workload: func(c *infra.Cluster) {
			at(c, 500*sim.Millisecond, func() { c.Admin.CreateCassandra("cass", 2, nil) })
			at(c, 4*sim.Second, func() { c.Admin.ScaleCassandra("cass", 3, nil) })
			at(c, 8*sim.Second, func() { c.Admin.ScaleCassandra("cass", 2, nil) })
		},
		Horizon:  15 * sim.Second,
		Topology: cassTopology(),
	}
}

// TargetCass402 is cassandra-operator-402: an operator that restarts
// against a stale apiserver resumes a completed decommission and deletes a
// live member's PVC. Workload: scale 2 → 1 → 2 (decommission, then
// re-create the member).
func TargetCass402() core.Target {
	return core.Target{
		Name:  "cass-op-402",
		Bug:   oracle.NameNoLivePVCDeletion,
		Build: func(seed int64) *infra.Cluster { return infra.New(cassOptions(seed)) },
		Workload: func(c *infra.Cluster) {
			at(c, 500*sim.Millisecond, func() { c.Admin.CreateCassandra("cass", 2, nil) })
			at(c, 4*sim.Second, func() { c.Admin.ScaleCassandra("cass", 1, nil) })
			at(c, 7*sim.Second, func() { c.Admin.ScaleCassandra("cass", 2, nil) })
		},
		Horizon:  15 * sim.Second,
		Topology: cassTopology(),
	}
}

// AllTargets returns the five Section 7 bug targets.
func AllTargets() []core.Target {
	return []core.Target{
		Target59848(),
		Target56261(),
		TargetCass398(),
		TargetCass400(),
		TargetCass402(),
	}
}
