package farm

import "repro/internal/campaign"

// Cell identifies one (target, strategy) campaign — one entry of the
// matrix, one artifact in campaign.json.
type Cell struct {
	Target   string
	Strategy string
}

// Plan expands a campaign matrix into farm tasks. base carries every
// engine knob plus the full seed sweep; Plan fills in ID, Target,
// Strategy, and the per-task seed slice. Tasks come out cell-major
// (target-major, then strategy, then seed) with dense IDs, so grouping
// completed tasks by first appearance reproduces the matrix order.
//
// The shard boundary follows the engine's independence structure:
//
//   - Without learning, seeds are fully independent — the engine runs
//     each seed's reference, planning, and execution in isolation and
//     only the aggregator crosses seeds (and every cross-seed quantity
//     it computes is reconstructible from per-seed parts; see merge.go).
//     Such cells shard to one task per seed.
//   - With learning (Prune/Ranked), seed N's schedule consults the
//     bucket-class affinity of seeds < N (aggregator.affinity), so seed
//     sharding would change the schedules. Those cells stay whole: one
//     task carrying the full sweep.
func Plan(targets, strategies []string, base TaskSpec) []TaskSpec {
	seeds := base.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1} // the engine's historical default sweep
	}
	var out []TaskSpec
	for _, t := range targets {
		for _, s := range strategies {
			if base.Prune || base.Ranked {
				spec := base
				spec.ID = len(out)
				spec.Target, spec.Strategy = t, s
				spec.Seeds = seeds
				out = append(out, spec)
				continue
			}
			for _, seed := range seeds {
				spec := base
				spec.ID = len(out)
				spec.Target, spec.Strategy = t, s
				spec.Seeds = []int64{seed}
				out = append(out, spec)
			}
		}
	}
	return out
}

// Collate groups task results by cell in task (= matrix) order and
// merges every cell whose tasks all completed. Cells with a missing or
// failed task — a cancelled run's tail — are returned separately so the
// caller can report them; their completed shards are discarded rather
// than presented as a valid (but silently truncated) campaign.
func Collate(results []TaskResult) (merged []campaign.Result, incomplete []Cell) {
	order := []Cell{}
	parts := map[Cell][]TaskResult{}
	for _, tr := range results {
		c := Cell{Target: tr.Spec.Target, Strategy: tr.Spec.Strategy}
		if _, seen := parts[c]; !seen {
			order = append(order, c)
		}
		parts[c] = append(parts[c], tr)
	}
	for _, c := range order {
		rs := make([]campaign.Result, 0, len(parts[c]))
		ok := true
		for _, tr := range parts[c] {
			if tr.Res == nil {
				ok = false
				break
			}
			rs = append(rs, *tr.Res)
		}
		if !ok {
			incomplete = append(incomplete, c)
			continue
		}
		merged = append(merged, MergeCell(rs))
	}
	return merged, incomplete
}
