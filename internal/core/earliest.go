package core

import (
	"math"

	"repro/internal/sim"
	"repro/internal/trace"
)

// NoEffect is the sentinel EarliestEffect returns for plans with no
// prefix constraint at all (e.g. NopPlan): any checkpoint precedes it.
const NoEffect = sim.Time(math.MaxInt64)

// EarliestEffect returns the earliest virtual time at which the plan can
// influence the execution, given the reference trace the plan was mined
// from. A prefix checkpoint taken at or before this instant is safe to
// fork from: the checkpointed prefix is byte-identical between the
// unperturbed reference run and a full replay under the plan.
//
// The second return is false when the plan's effect time cannot be
// bounded (an unknown plan type) — such plans must run as full replays.
//
// Occurrence-targeted gap plans are special: their interceptor counts
// matching deliveries from the moment it is installed, so a fork must be
// taken before the FIRST matching delivery of the reference run (not
// merely before the dropped occurrence) or the fork's count would start
// late and drop the wrong event.
func EarliestEffect(p Plan, ref *trace.Trace) (sim.Time, bool) {
	switch p := p.(type) {
	case StalenessPlan:
		return p.From, true
	case GapPlan:
		if p.Occurrence > 0 {
			return firstMatchingDelivery(p, ref), true
		}
		return p.From, true
	case TimeTravelPlan:
		return p.FreezeAt, true
	case CrashPlan:
		return p.At, true
	case PartitionPlan:
		return p.From, true
	case SlowLinkPlan:
		return p.From, true
	case FlakyLinkPlan:
		return p.From, true
	case CompactionPressurePlan:
		return p.At, true
	case SequencePlan:
		eff := NoEffect
		for _, sub := range p.Plans {
			t, ok := EarliestEffect(sub, ref)
			if !ok {
				return 0, false
			}
			if t < eff {
				eff = t
			}
		}
		return eff, true
	case NopPlan:
		return NoEffect, true
	default:
		return 0, false
	}
}

// firstMatchingDelivery returns the send time of the first reference-run
// delivery the gap plan's interceptor would count, or NoEffect when the
// reference contains none (then the interceptor state cannot diverge
// before some other perturbation does).
func firstMatchingDelivery(p GapPlan, ref *trace.Trace) sim.Time {
	if ref == nil {
		return 0 // unknown reference: only the build boundary is safe
	}
	for _, d := range ref.Deliveries {
		if d.To != p.Victim || d.Kind != p.Kind || d.Name != p.Name {
			continue
		}
		if p.Type != "" && d.EventType != p.Type {
			continue
		}
		return d.Time
	}
	return NoEffect
}
