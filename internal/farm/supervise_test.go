package farm

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

// TestMain doubles as the worker-process helper: when FARM_TEST_WORKER
// is set, the test binary re-exec'd by ProcessTransport tests acts out a
// scripted worker instead of running the suite.
func TestMain(m *testing.M) {
	switch os.Getenv("FARM_TEST_WORKER") {
	case "":
		os.Exit(m.Run())
	case "ok":
		if err := WorkerLoop(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "crash":
		// Announce ready, accept one task, then die mid-write with noise
		// on stderr — the shape of a worker the supervisor must convict
		// on evidence: torn frame, exit status, stderr tail.
		fmt.Fprintln(os.Stderr, "worker exploding: simulated crash")
		enc := json.NewEncoder(os.Stdout)
		_ = enc.Encode(wireMsg{Type: msgReady, Proto: ProtocolVersion})
		sc := bufio.NewScanner(os.Stdin)
		sc.Scan()
		_, _ = os.Stdout.WriteString(`{"type":"result","task`)
		os.Exit(3)
	default:
		fmt.Fprintln(os.Stderr, "unknown FARM_TEST_WORKER mode")
		os.Exit(2)
	}
}

// inProcSupervisor returns a Supervisor over clean in-process workers
// with fast test timings.
func inProcSupervisor(workers int) *Supervisor {
	return &Supervisor{
		Factory:     func(slot, spawn int) Transport { return NewInProcTransport() },
		Workers:     workers,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
	}
}

// chaosFactory wraps each slot's FIRST incarnation with its scripted
// fault; respawns come up clean — the same policy as phfarm -chaos.
func chaosFactory(faults []Fault) func(slot, spawn int) Transport {
	return func(slot, spawn int) Transport {
		tr := Transport(NewInProcTransport())
		if spawn == 0 && slot < len(faults) && faults[slot].Kind != "" {
			return &FaultTransport{Inner: tr, Fault: faults[slot]}
		}
		return tr
	}
}

func supervisedRun(t *testing.T, sup *Supervisor, tasks []TaskSpec) ([]TaskResult, FleetReport) {
	t.Helper()
	results, report, interrupted, err := RunSupervised(context.Background(), sup, tasks, nil)
	if err != nil {
		t.Fatalf("RunSupervised: %v", err)
	}
	if interrupted {
		t.Fatal("RunSupervised reported interrupt without cancellation")
	}
	return results, report
}

// TestSupervisedByteIdentityUnderFaults is the tentpole invariant: a
// fleet with injected worker crashes — kill, torn write, stall — merges
// to byte-identical canonicalized artifact and telemetry versus a
// failure-free single-process run, at 1, 2, and 3 workers. Retried
// tasks re-execute deterministically, so supervision must be invisible
// in the campaign's outputs.
func TestSupervisedByteIdentityUnderFaults(t *testing.T) {
	spec := TaskSpec{
		Target:        "cass-op-400",
		Strategy:      "partial-history",
		Seeds:         []int64{1, 2},
		MaxExecutions: 30,
		Parallel:      2,
	}
	direct := directRun(t, spec)
	cfg := spec.engineConfig(nil)
	wantArt := artifactBytes(t, direct, cfg)
	wantND := ndjsonBytes(t, direct, cfg)

	// Slot 0 is killed mid-stream, slot 1's stream tears mid-frame, slot
	// 2 stalls silently until the task deadline convicts it. Frames >= 2
	// so the handshake always succeeds and the death lands on a task.
	faults := []Fault{
		{Kind: FaultKill, Frame: 4},
		{Kind: FaultTorn, Frame: 6},
		{Kind: FaultStall, Frame: 3},
	}
	for _, workers := range []int{1, 2, 3} {
		tasks := Plan([]string{spec.Target}, []string{spec.Strategy}, spec)
		sup := inProcSupervisor(workers)
		sup.Factory = chaosFactory(faults[:workers])
		sup.Deadline = func(TaskSpec) time.Duration { return 2 * time.Second * raceSlowdown }
		// Task assignment races across slots, so several first-spawn faults
		// can land on the same task; raise the kill threshold so this test
		// exercises retry, not quarantine (which has its own test below).
		sup.MaxTaskKills = len(faults) + 1
		results, report := supervisedRun(t, sup, tasks)
		if len(report.Deaths) == 0 {
			t.Fatalf("workers=%d: chaos injected no deaths", workers)
		}
		if len(report.Quarantined) != 0 {
			t.Fatalf("workers=%d: unexpected quarantine: %+v", workers, report)
		}
		merged, incomplete := Collate(results)
		if len(incomplete) > 0 || len(merged) != 1 {
			t.Fatalf("workers=%d: merged=%d incomplete=%v", workers, len(merged), incomplete)
		}
		// The merged cell carries fleet counters pre-canonicalization...
		if merged[0].Stats.Fleet == nil || merged[0].Stats.Fleet.WorkerDeaths == 0 {
			t.Errorf("workers=%d: merged cell lost its fleet counters: %+v", workers, merged[0].Stats.Fleet)
		}
		// ...and none after: chaos and failure-free runs emit the same bytes.
		if got := artifactBytes(t, merged[0], cfg); !bytes.Equal(got, wantArt) {
			t.Errorf("workers=%d: chaos artifact differs from failure-free run", workers)
		}
		if got := ndjsonBytes(t, merged[0], cfg); !bytes.Equal(got, wantND) {
			t.Errorf("workers=%d: chaos telemetry differs from failure-free run", workers)
		}
	}
}

// TestUnsupervisedCoordinatorAbortsOnWorkerDeath pins the legacy
// behavior the supervision layer exists to fix: the plain Coordinator
// loses a dead worker's task and — with no surviving workers — fails
// the whole run. The same fault under RunSupervised completes.
func TestUnsupervisedCoordinatorAbortsOnWorkerDeath(t *testing.T) {
	spec := TaskSpec{
		Target:        "cass-op-400",
		Strategy:      "partial-history",
		Seeds:         []int64{1, 2},
		MaxExecutions: 30,
		Parallel:      2,
	}
	tasks := Plan([]string{spec.Target}, []string{spec.Strategy}, spec)
	kill := []Fault{{Kind: FaultKill, Frame: 4}}

	coord := &Coordinator{}
	_, _, err := coord.Run(context.Background(), []Transport{chaosFactory(kill)(0, 0)}, tasks)
	if err == nil || !strings.Contains(err.Error(), "never completed") {
		t.Fatalf("legacy coordinator error = %v, want 'never completed' abort", err)
	}

	sup := inProcSupervisor(1)
	sup.Factory = chaosFactory(kill)
	results, report := supervisedRun(t, sup, tasks)
	for i, tr := range results {
		if tr.Res == nil {
			t.Errorf("supervised task %d did not complete", i)
		}
	}
	if len(report.Deaths) == 0 || report.Retried == 0 {
		t.Errorf("supervised run recorded no recovery: %+v", report)
	}
}

// TestPoisonTaskQuarantine: a task that kills every worker it touches
// is quarantined after MaxTaskKills distinct deaths instead of grinding
// the fleet down, and the rest of the campaign completes. The merged
// cell is deterministic across worker counts.
func TestPoisonTaskQuarantine(t *testing.T) {
	spec := TaskSpec{
		Target:        "cass-op-400",
		Strategy:      "partial-history",
		Seeds:         []int64{1, 2},
		MaxExecutions: 30,
		Parallel:      2,
	}
	// Task 1 (seed 2) is poison: any worker that streams a frame for it
	// dies instantly, every incarnation. (Task-scoped faults need ID >=
	// 1: task 0's frames omit the task_id field on the wire.)
	poison := 1
	factory := func(slot, spawn int) Transport {
		return &FaultTransport{
			Inner: NewInProcTransport(),
			Fault: Fault{Kind: FaultKill, Frame: 1, Task: &poison},
		}
	}

	var artifacts [][]byte
	for _, workers := range []int{1, 2, 3} {
		tasks := Plan([]string{spec.Target}, []string{spec.Strategy}, spec)
		sup := inProcSupervisor(workers)
		sup.Factory = factory
		results, report := supervisedRun(t, sup, tasks)

		if results[0].Res == nil {
			t.Fatalf("workers=%d: healthy task 0 did not complete", workers)
		}
		q := results[poison].Quarantine
		if q == nil {
			t.Fatalf("workers=%d: poison task not quarantined: %+v", workers, results[poison])
		}
		if q.Kills != 2 || len(results[poison].Deaths) != 2 {
			t.Errorf("workers=%d: quarantined after %d kills, want 2 (default)", workers, q.Kills)
		}
		if results[poison].Res != nil {
			t.Errorf("workers=%d: quarantined task also has a result", workers)
		}
		if len(report.Quarantined) != 1 || report.Quarantined[0] != poison {
			t.Errorf("workers=%d: report.Quarantined = %v, want [%d]", workers, report.Quarantined, poison)
		}

		merged, incomplete := Collate(results)
		if len(incomplete) > 0 {
			t.Fatalf("workers=%d: quarantined cell treated as incomplete: %v", workers, incomplete)
		}
		if len(merged) != 1 {
			t.Fatalf("workers=%d: got %d merged cells, want 1", workers, len(merged))
		}
		m := merged[0]
		fl := m.Stats.Fleet
		if fl == nil || fl.TasksQuarantined != 1 || fl.WorkerDeaths < 2 {
			t.Errorf("workers=%d: merged fleet counters wrong: %+v", workers, fl)
		}
		// The quarantine surfaces as an execution-failure record, kind
		// "quarantine", on the poisoned seed.
		found := false
		for _, f := range m.Failures {
			if f.Kind == "quarantine" && f.Seed == 2 && f.Index == -1 {
				found = true
			}
		}
		if !found {
			t.Errorf("workers=%d: no quarantine failure record: %+v", workers, m.Failures)
		}
		// Headline: seed 1 completed and detects; the quarantined seed
		// contributes zero executions, deterministically.
		if len(m.Seeds) != 2 {
			t.Fatalf("workers=%d: merged %d seed results, want 2", workers, len(m.Seeds))
		}
		artifacts = append(artifacts, artifactBytes(t, m, spec.engineConfig(nil)))
	}
	for i := 1; i < len(artifacts); i++ {
		if !bytes.Equal(artifacts[0], artifacts[i]) {
			t.Errorf("quarantined-cell artifact differs between worker counts 1 and %d", i+1)
		}
	}
}

// TestProcessWorkerDeathEvidence re-execs the test binary as a crashing
// subprocess worker and checks the conviction file: protocol-violation
// cause, exit-status detail, and the stderr tail in the death record.
func TestProcessWorkerDeathEvidence(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spec := TaskSpec{
		Target:        "cass-op-400",
		Strategy:      "partial-history",
		Seeds:         []int64{1},
		MaxExecutions: 10,
		Parallel:      1,
	}
	tasks := Plan([]string{spec.Target}, []string{spec.Strategy}, spec)
	sup := &Supervisor{
		Factory: func(slot, spawn int) Transport {
			return &ProcessTransport{
				Path:   exe,
				Env:    append(os.Environ(), "FARM_TEST_WORKER=crash"),
				Stderr: io.Discard,
			}
		},
		Workers:      1,
		MaxTaskKills: 1, // first death quarantines; no healthy respawn exists
		BackoffBase:  time.Millisecond,
	}
	results, report, _, err := RunSupervised(context.Background(), sup, tasks, nil)
	if err != nil {
		t.Fatalf("RunSupervised: %v", err)
	}
	if results[0].Quarantine == nil {
		t.Fatalf("crashing worker's task not quarantined: %+v", results[0])
	}
	if len(report.Deaths) != 1 {
		t.Fatalf("got %d deaths, want 1: %+v", len(report.Deaths), report.Deaths)
	}
	d := report.Deaths[0]
	if d.Cause != DeathProtocol {
		t.Errorf("death cause = %q, want %q (torn frame)", d.Cause, DeathProtocol)
	}
	if !strings.Contains(d.StderrTail, "worker exploding") {
		t.Errorf("stderr tail lost the worker's last words: %q", d.StderrTail)
	}
	if d.TaskID != 0 {
		t.Errorf("death not attributed to task 0: %+v", d)
	}
}

// TestSupervisorBackoff: capped exponential growth with jitter in
// [d/2, d].
func TestSupervisorBackoff(t *testing.T) {
	sup := &Supervisor{BackoffBase: 50 * time.Millisecond, BackoffCap: 2 * time.Second}
	prevMax := time.Duration(0)
	for fails := 1; fails <= 10; fails++ {
		want := 50 * time.Millisecond << (fails - 1)
		if want > 2*time.Second {
			want = 2 * time.Second
		}
		for i := 0; i < 20; i++ {
			got := sup.backoff(fails)
			if got < want/2 || got > want {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", fails, got, want/2, want)
			}
		}
		if want < prevMax {
			t.Fatalf("backoff ceiling shrank: %v after %v", want, prevMax)
		}
		prevMax = want
	}
}

// TestDefaultTaskDeadline scales with seed count and event budget.
func TestDefaultTaskDeadline(t *testing.T) {
	base := DefaultTaskDeadline(TaskSpec{Seeds: []int64{1}})
	if base != 2*time.Minute {
		t.Errorf("single-seed default = %v, want 2m", base)
	}
	if got := DefaultTaskDeadline(TaskSpec{Seeds: []int64{1, 2, 3}}); got != 3*base {
		t.Errorf("3-seed deadline = %v, want %v", got, 3*base)
	}
	big := DefaultTaskDeadline(TaskSpec{Seeds: []int64{1}, EventBudget: campaign.DefaultEventBudget * 4})
	if big != 4*base {
		t.Errorf("4x budget deadline = %v, want %v", big, 4*base)
	}
	// Budgets below the default never shrink the allowance.
	small := DefaultTaskDeadline(TaskSpec{Seeds: []int64{1}, EventBudget: 10})
	if small != base {
		t.Errorf("small budget deadline = %v, want %v", small, base)
	}
}
