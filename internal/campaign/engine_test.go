package campaign

import (
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestParallelMatchesSerial is the cross-check the package exists to
// honor: an unguided engine at any worker count produces a
// CampaignResult byte-identical to the serial core.RunCampaign — same
// detection, same first-detecting plan, same execution accounting.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name     string
		target   core.Target
		strategy core.Strategy
		maxExec  int
	}{
		// Fast detection: the planner finds 56261 on its first plan.
		{"planner-56261", workload.Target56261(), core.NewPlanner(), 40},
		// No detection: CrashTuner misses 56261 — the pool must drain
		// the whole bounded plan list and agree on the count.
		{"crashtuner-56261", workload.Target56261(), baselines.CrashTuner{}, 25},
		// Mid-list detection: random needs a couple dozen executions,
		// so workers genuinely race ahead of the detecting index.
		{"random-56261", workload.Target56261(), baselines.Random{Seed: 7, N: 150}, 150},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want := core.RunCampaign(tc.target, tc.strategy, tc.maxExec)
			for _, workers := range []int{1, 2, 4} {
				eng := New(Config{Workers: workers, MaxExecutions: tc.maxExec})
				got := eng.Run(tc.target, tc.strategy)
				if !reflect.DeepEqual(got.Campaign, want) {
					t.Fatalf("workers=%d: parallel result diverged from serial\n got: %+v\nwant: %+v",
						workers, got.Campaign, want)
				}
				if got.Detected != want.Detected {
					t.Fatalf("workers=%d: Detected=%v, serial=%v", workers, got.Detected, want.Detected)
				}
				if want.Detected && got.Campaign.DetectingPlan != want.DetectingPlan {
					t.Fatalf("workers=%d: first-detection plan %q, serial %q",
						workers, got.Campaign.DetectingPlan, want.DetectingPlan)
				}
			}
		})
	}
}

// TestExecutionsCountReference guards the accounting convention: the
// reference run is a real execution and is counted, so a campaign that
// detects on its very first plan reports Executions == 2.
func TestExecutionsCountReference(t *testing.T) {
	target := workload.Target56261()
	serial := core.RunCampaign(target, core.NewPlanner(), 5)
	if !serial.Detected {
		t.Fatalf("planner unexpectedly missed 56261 in 5 executions: %+v", serial)
	}
	if serial.Executions < 2 {
		t.Fatalf("detected campaign must count the reference run: Executions=%d", serial.Executions)
	}
	eng := New(Config{Workers: 2, MaxExecutions: 5})
	got := eng.Run(target, core.NewPlanner())
	if got.Campaign.Executions != serial.Executions {
		t.Fatalf("engine Executions=%d, serial=%d", got.Campaign.Executions, serial.Executions)
	}
	if got.Stats.RawExecutions < got.Campaign.Executions {
		t.Fatalf("raw executions %d below serial-equivalent count %d",
			got.Stats.RawExecutions, got.Campaign.Executions)
	}
}

// TestMultiSeedSweep verifies that each seed is an honest re-execution:
// per-seed results match core.RunCampaignSeed for that seed, not a replay
// of seed 1.
func TestMultiSeedSweep(t *testing.T) {
	target := workload.Target56261()
	seeds := []int64{1, 2, 3}
	eng := New(Config{Workers: 2, Seeds: seeds, MaxExecutions: 30})
	res := eng.Run(target, core.NewPlanner())
	if len(res.Seeds) != len(seeds) {
		t.Fatalf("expected %d seed results, got %d", len(seeds), len(res.Seeds))
	}
	for i, seed := range seeds {
		want := core.RunCampaignSeed(target, core.NewPlanner(), 30, seed)
		got := res.Seeds[i]
		if got.Seed != seed {
			t.Fatalf("seed order: got %d at position %d, want %d", got.Seed, i, seed)
		}
		if !reflect.DeepEqual(got.Campaign, want) {
			t.Fatalf("seed %d diverged from serial re-execution\n got: %+v\nwant: %+v",
				seed, got.Campaign, want)
		}
	}
	if res.Stats.Seeds != len(seeds) {
		t.Fatalf("stats report %d seeds, want %d", res.Stats.Seeds, len(seeds))
	}
	// The primary result is seed 1's.
	if !reflect.DeepEqual(res.Campaign, res.Seeds[0].Campaign) {
		t.Fatal("primary campaign result is not the first seed's")
	}
}

// TestGuidedEngineDetects runs the coverage-guided mode end to end: it
// must still find the bug, and its instrumentation must produce coverage
// classes, signatures, and a detected failure bucket.
func TestGuidedEngineDetects(t *testing.T) {
	target := workload.Target56261()
	eng := New(Config{Workers: 2, Guided: true, MaxExecutions: 60})
	res := eng.Run(target, core.NewPlanner())
	if !res.Detected {
		t.Fatalf("guided engine missed 56261: %+v", res.Campaign)
	}
	if res.Stats.CoverageClasses == 0 {
		t.Fatal("guided run reported zero coverage classes")
	}
	if res.Stats.NovelSignatures == 0 {
		t.Fatal("guided run reported zero signatures")
	}
	found := false
	for _, b := range res.Buckets {
		if b.Detected {
			found = true
			if b.Count == 0 || b.ExamplePlan == "" {
				t.Fatalf("malformed detected bucket: %+v", b)
			}
		}
	}
	if !found {
		t.Fatalf("no detected failure bucket among %d buckets", len(res.Buckets))
	}
}

// TestKeepGoingCollectsMoreFailures verifies that disabling early cancel
// keeps executing after the first detection and that first-detection
// accounting is unchanged.
func TestKeepGoingCollectsMoreFailures(t *testing.T) {
	target := workload.Target56261()
	maxExec := 12
	stop := New(Config{Workers: 2, MaxExecutions: maxExec})
	keep := New(Config{Workers: 2, MaxExecutions: maxExec, KeepGoing: true, Collect: true})
	a := stop.Run(target, core.NewPlanner())
	b := keep.Run(target, core.NewPlanner())
	if !a.Detected || !b.Detected {
		t.Fatalf("both engines should detect: stop=%v keep=%v", a.Detected, b.Detected)
	}
	if !reflect.DeepEqual(a.Campaign, b.Campaign) {
		t.Fatalf("KeepGoing changed first-detection accounting\n got: %+v\nwant: %+v",
			b.Campaign, a.Campaign)
	}
	if b.Stats.RawExecutions != maxExec+1 { // every plan + the reference
		t.Fatalf("KeepGoing ran %d executions, want %d", b.Stats.RawExecutions, maxExec+1)
	}
	if b.Stats.RawExecutions < a.Stats.RawExecutions {
		t.Fatalf("KeepGoing ran fewer executions (%d) than early-cancel (%d)",
			b.Stats.RawExecutions, a.Stats.RawExecutions)
	}
}

// TestCampaignSmoke is the short-mode smoke test CI runs on every push:
// one fast campaign through the parallel engine, detection expected.
func TestCampaignSmoke(t *testing.T) {
	eng := New(Config{Workers: 2, MaxExecutions: 10})
	res := eng.Run(workload.Target56261(), core.NewPlanner())
	if !res.Detected {
		t.Fatalf("smoke campaign missed 56261: %+v", res.Campaign)
	}
	if res.Stats.RawExecutions == 0 || res.Stats.WallNanos == 0 {
		t.Fatalf("missing progress counters: %+v", res.Stats)
	}
}

// TestMatrixShape checks Matrix row-major ordering against core.Matrix.
func TestMatrixShape(t *testing.T) {
	targets := []core.Target{workload.Target56261()}
	strategies := []core.Strategy{core.NewPlanner(), baselines.CrashTuner{}}
	eng := New(Config{Workers: 2, MaxExecutions: 15})
	got := eng.Matrix(targets, strategies)
	want := core.Matrix(targets, strategies, 15)
	if len(got) != len(want) {
		t.Fatalf("matrix size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Campaign, want[i]) {
			t.Fatalf("matrix cell %d diverged\n got: %+v\nwant: %+v", i, got[i].Campaign, want[i])
		}
	}
}
