package cassandra_test

import (
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/infra"
	"repro/internal/operators/cassandra"
	"repro/internal/oracle"
	"repro/internal/sim"
)

func newCassCluster(t *testing.T, fixes cassandra.Fixes) *infra.Cluster {
	t.Helper()
	opts := infra.DefaultOptions()
	opts.Nodes = []string{"k1", "k2", "k3"}
	opts.EnableVolumeController = false
	opts.Cassandra = &infra.CassandraOptions{Name: "cass", Fixes: fixes}
	c := infra.New(opts)
	c.RunFor(sim.Second)
	return c
}

func memberPods(c *infra.Cluster) []string {
	var out []string
	for _, p := range c.GroundTruth(cluster.KindPod) {
		if p.Pod != nil && p.Pod.App == "cass" && !p.Terminating() {
			out = append(out, p.Meta.Name)
		}
	}
	return out
}

func pvcNames(c *infra.Cluster) []string {
	var out []string
	for _, p := range c.GroundTruth(cluster.KindPVC) {
		out = append(out, p.Meta.Name)
	}
	return out
}

func TestOperatorScaleUpAndRun(t *testing.T) {
	c := newCassCluster(t, cassandra.Fixes{})
	c.Admin.CreateCassandra("cass", 2, nil)
	c.RunFor(5 * sim.Second)

	if got := memberPods(c); len(got) != 2 {
		t.Fatalf("members = %v, want 2", got)
	}
	if got := pvcNames(c); len(got) != 2 {
		t.Fatalf("pvcs = %v, want 2", got)
	}
	// Members get scheduled and actually run somewhere.
	running := 0
	for _, node := range []string{"k1", "k2", "k3"} {
		running += len(c.Hosts[node].Running())
	}
	if running != 2 {
		t.Fatalf("running containers = %d, want 2", running)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestOperatorCleanScaleDown(t *testing.T) {
	c := newCassCluster(t, cassandra.Fixes{})
	c.Admin.CreateCassandra("cass", 3, nil)
	c.RunFor(5 * sim.Second)
	c.Admin.ScaleCassandra("cass", 2, nil)
	c.RunFor(5 * sim.Second)

	got := memberPods(c)
	if len(got) != 2 {
		t.Fatalf("members after scale-down = %v", got)
	}
	if pvcs := pvcNames(c); len(pvcs) != 2 {
		t.Fatalf("pvcs after scale-down = %v", pvcs)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// scenario398 drops the operator's observation of the decommissioned
// member's deletionTimestamp — the observability gap behind issue 398.
func scenario398(t *testing.T, fixes cassandra.Fixes) *infra.Cluster {
	t.Helper()
	c := newCassCluster(t, fixes)
	c.Admin.CreateCassandra("cass", 2, nil)
	c.RunFor(5 * sim.Second)

	c.World.Network().AddInterceptor(sim.InterceptorFunc(func(m *sim.Message) sim.Decision {
		if m.Kind != apiserver.KindWatchPush || m.To != cassandra.OperatorID {
			return sim.Decision{Verdict: sim.Pass}
		}
		push, ok := m.Payload.(*apiserver.WatchPushMsg)
		if !ok {
			return sim.Decision{Verdict: sim.Pass}
		}
		for _, ev := range push.Events {
			if ev.Object.Meta.Kind == cluster.KindPod && ev.Object.Meta.Name == "cass-1" &&
				ev.Type == apiserver.Modified && ev.Object.Meta.DeletionTimestamp != 0 {
				return sim.Decision{Verdict: sim.Drop}
			}
		}
		return sim.Decision{Verdict: sim.Pass}
	}))

	c.Admin.ScaleCassandra("cass", 1, nil)
	c.RunFor(8 * sim.Second)
	return c
}

func TestBug398OrphansPVC(t *testing.T) {
	c := scenario398(t, cassandra.Fixes{})
	if !c.Oracles.Violated(oracle.NameNoOrphanPVC) {
		t.Fatalf("expected NoOrphanPVC; members=%v pvcs=%v violations=%v",
			memberPods(c), pvcNames(c), c.Violations())
	}
}

func TestBug398Fixed(t *testing.T) {
	c := scenario398(t, cassandra.Fixes{Fix398: true})
	if c.Oracles.Violated(oracle.NameNoOrphanPVC) {
		t.Fatalf("fixed operator orphaned PVC: %v", c.Violations())
	}
	if pvcs := pvcNames(c); len(pvcs) != 1 {
		t.Fatalf("pvcs = %v, want only cass-0-data", pvcs)
	}
}

// scenario400 suppresses the operator's status update so ReadyMembers lags
// the real membership, then scales down: the stock operator decommissions
// the stale status tail (cass-1) instead of the true tail (cass-2).
func scenario400(t *testing.T, fixes cassandra.Fixes) *infra.Cluster {
	t.Helper()
	c := newCassCluster(t, fixes)
	c.Admin.CreateCassandra("cass", 2, nil)
	c.RunFor(5 * sim.Second) // status settles at [cass-0, cass-1]

	// Drop every status write that would record 3 ready members.
	c.World.Network().AddInterceptor(sim.InterceptorFunc(func(m *sim.Message) sim.Decision {
		if m.From != cassandra.OperatorID || m.Kind != "rpc-req:"+apiserver.MethodUpdate {
			return sim.Decision{Verdict: sim.Pass}
		}
		req, ok := m.Payload.(*sim.RPCRequest)
		if !ok {
			return sim.Decision{Verdict: sim.Pass}
		}
		upd, ok := req.Body.(*apiserver.UpdateRequest)
		if !ok || upd.Object.Cassandra == nil {
			return sim.Decision{Verdict: sim.Pass}
		}
		if len(upd.Object.Cassandra.ReadyMembers) == 3 {
			return sim.Decision{Verdict: sim.Drop}
		}
		return sim.Decision{Verdict: sim.Pass}
	}))

	c.Admin.ScaleCassandra("cass", 3, nil)
	c.RunFor(5 * sim.Second) // pods 0,1,2 run; status stuck at [0,1]
	c.Admin.ScaleCassandra("cass", 2, nil)
	c.RunFor(8 * sim.Second)
	return c
}

func TestBug400WrongDecommission(t *testing.T) {
	c := scenario400(t, cassandra.Fixes{})
	if !c.Oracles.Violated(oracle.NameScaleDownCompletes) {
		t.Fatalf("expected ScaleDownCompletes; members=%v wrongDecomm=%d violations=%v",
			memberPods(c), c.Cassandra.WrongDecomm, c.Violations())
	}
	if c.Cassandra.WrongDecomm == 0 {
		t.Fatal("expected the operator to decommission a non-tail member")
	}
}

func TestBug400Fixed(t *testing.T) {
	c := scenario400(t, cassandra.Fixes{Fix400: true})
	if c.Oracles.Violated(oracle.NameScaleDownCompletes) {
		t.Fatalf("fixed operator failed scale-down: members=%v violations=%v",
			memberPods(c), c.Violations())
	}
	got := map[string]bool{}
	for _, m := range memberPods(c) {
		got[m] = true
	}
	if !got["cass-0"] || !got["cass-1"] || len(got) != 2 {
		t.Fatalf("members = %v, want exactly {cass-0, cass-1}", memberPods(c))
	}
}

// scenario402 freezes api-2 while a decommission is in flight, lets it
// complete and the member be re-created via api-1, then restarts the
// operator against the stale api-2: the resumed "decommission" destroys the
// live member's PVC.
func scenario402(t *testing.T, fixes cassandra.Fixes) *infra.Cluster {
	t.Helper()
	c := newCassCluster(t, fixes)
	c.Admin.CreateCassandra("cass", 2, nil)
	c.RunFor(5 * sim.Second)

	// Freeze api-2 the moment the CR records Decommissioning=cass-1.
	frozen := false
	freezeOnDecommission(c, &frozen)

	c.Admin.ScaleCassandra("cass", 1, nil)
	c.RunFor(5 * sim.Second) // decommission completes via api-1
	if !frozen {
		t.Fatal("api-2 was never frozen; decommission marker not observed")
	}
	c.Admin.ScaleCassandra("cass", 2, nil)
	c.RunFor(5 * sim.Second) // cass-1 re-created, running

	// Operator restarts against the stale api-2.
	op := c.Cassandra
	if err := c.World.Crash(op.ID()); err != nil {
		t.Fatal(err)
	}
	op.SetUpstream(infra.APIServerID(1))
	c.RunFor(100 * sim.Millisecond)
	if err := c.World.Restart(op.ID()); err != nil {
		t.Fatal(err)
	}
	// Heal api-2 shortly after so only the restart window is stale.
	c.World.Kernel().Schedule(300*sim.Millisecond, func() {
		c.World.Network().Heal(infra.APIServerID(1), infra.StoreID)
	})
	c.RunFor(8 * sim.Second)
	return c
}

// freezeOnDecommission partitions api-2 from the store at the commit that
// sets the CR's Decommissioning marker, so api-2's cache preserves that
// moment forever (until healed).
func freezeOnDecommission(c *infra.Cluster, frozen *bool) {
	c.Store.Store().AddNotifyHook(func(events []history.Event) {
		if *frozen {
			return
		}
		for _, e := range events {
			if e.Type != history.Put || e.Key != cluster.Key(cluster.KindCassandra, "cass") {
				continue
			}
			obj, err := cluster.Decode(e.Value, e.Revision)
			if err != nil || obj.Cassandra == nil {
				continue
			}
			if obj.Cassandra.Decommissioning == "cass-1" {
				*frozen = true
				// Cut api-2 off shortly *after* this commit's push reaches
				// it, so its frozen cache contains the Decommissioning
				// marker but nothing that follows (the drain completes
				// ~100ms later, safely outside the window).
				c.World.Kernel().Schedule(10*sim.Millisecond, func() {
					c.World.Network().Partition(infra.APIServerID(1), infra.StoreID)
				})
			}
		}
	})
}

func TestBug402DeletesLivePVC(t *testing.T) {
	c := scenario402(t, cassandra.Fixes{})
	if !c.Oracles.Violated(oracle.NameNoLivePVCDeletion) {
		t.Fatalf("expected NoLivePVCDeletion; pvcs=%v violations=%v", pvcNames(c), c.Violations())
	}
}

func TestBug402Fixed(t *testing.T) {
	c := scenario402(t, cassandra.Fixes{Fix402: true})
	if c.Oracles.Violated(oracle.NameNoLivePVCDeletion) {
		t.Fatalf("fixed operator deleted live PVC: %v", c.Violations())
	}
}
