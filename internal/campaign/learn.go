// Learning-phase reporting: the JSON-facing view of internal/learn's
// per-seed mining, pruning, and dedup decisions, plus the aggregator
// plumbing that threads them into Stats, the campaign.json artifact, and
// the NDJSON telemetry stream. Everything here is derived from the
// deterministic learning schedule, so it is byte-identical across
// reruns and worker counts.
package campaign

import (
	"sort"

	"repro/internal/learn"
)

// ProfileSummary is one component's learned read-dependency profile in
// artifact form (the full observation→action table stays in-process; the
// artifact carries the shape a triager needs to sanity-check pruning).
type ProfileSummary struct {
	Component string `json:"component"`
	// Deliveries counts every watch delivery the component received in
	// the reference run; Consumed the subset it plausibly consumed
	// (acted within the reaction window, ever wrote the object, or
	// deletion-adjacent).
	Deliveries int `json:"deliveries"`
	Consumed   int `json:"consumed"`
	// Writes / CASWrites count the component's mutating RPCs and the
	// subset updating or deleting existing objects.
	Writes    int `json:"writes"`
	CASWrites int `json:"cas_writes"`
	// Kinds is the sorted set of kinds with at least one consumed
	// delivery.
	Kinds []string `json:"kinds,omitempty"`
}

// PruneRecord is one deferred plan's decision record (kept plans are not
// recorded individually — the counts in SeedLearn cover them).
type PruneRecord struct {
	// Index is the plan's position in the strategy's original order.
	Index int    `json:"index"`
	Plan  string `json:"plan"`
	// Action is "prune" (empty consumed surface) or "dedupe" (equal
	// equivalence class as an earlier kept plan).
	Action string `json:"action"`
	Reason string `json:"reason"`
	// Class is the plan's equivalence class; Surface the number of
	// consumed deliveries its perturbation could intersect.
	Class   string `json:"class,omitempty"`
	Surface int    `json:"surface"`
	// Representative is the original index of the kept plan covering
	// this one (-1 for prunes).
	Representative int `json:"representative"`
}

// SeedLearn is one seed's learning-phase report.
type SeedLearn struct {
	Seed int64 `json:"seed"`
	// Planned/Kept/Pruned/Deduped are the schedule's plan accounting:
	// Planned = Kept + Pruned + Deduped.
	Planned int `json:"planned"`
	Kept    int `json:"kept"`
	Pruned  int `json:"pruned"`
	Deduped int `json:"deduped"`
	// ConsumedDeliveries is the size of the mined global consumed list —
	// the substrate every surface computation indexes into.
	ConsumedDeliveries int `json:"consumed_deliveries"`
	// Profiles lists every profiled component, sorted by name.
	Profiles []ProfileSummary `json:"profiles"`
	// Decisions lists every deferred plan (prunes and dedupes), in
	// original plan order.
	Decisions []PruneRecord `json:"pruned_plans,omitempty"`
}

// noteLearn records one seed's learning schedule into the aggregator.
func (a *aggregator) noteLearn(seed int64, m *learn.Model, sched *learn.Schedule) {
	sl := SeedLearn{
		Seed:               seed,
		Planned:            sched.Stats.Planned,
		Kept:               sched.Stats.Kept,
		Pruned:             sched.Stats.Pruned,
		Deduped:            sched.Stats.Deduped,
		ConsumedDeliveries: m.ConsumedCount(),
	}
	for _, id := range m.Components() {
		p := m.Profiles[id]
		kinds := make([]string, 0, len(p.Kinds))
		for _, k := range p.Kinds {
			kinds = append(kinds, string(k))
		}
		sl.Profiles = append(sl.Profiles, ProfileSummary{
			Component:  string(id),
			Deliveries: p.Deliveries,
			Consumed:   len(p.Consumed),
			Writes:     p.Writes,
			CASWrites:  p.CASWrites,
			Kinds:      kinds,
		})
	}
	for _, d := range sched.Decisions {
		if d.Action == learn.Keep {
			continue
		}
		sl.Decisions = append(sl.Decisions, PruneRecord{
			Index:          d.Index,
			Plan:           d.Plan.ID(),
			Action:         string(d.Action),
			Reason:         d.Reason,
			Class:          d.Class,
			Surface:        d.Surface,
			Representative: d.Representative,
		})
	}
	sort.Slice(sl.Decisions, func(i, j int) bool { return sl.Decisions[i].Index < sl.Decisions[j].Index })
	a.learn = append(a.learn, sl)
	a.plansPruned += sched.Stats.Pruned
	a.plansDeduped += sched.Stats.Deduped
}

// notePrunedExecution counts one deferred-tail execution from the
// deterministic execution set; unsound marks a tail detection the kept
// set missed entirely — the soundness regression every pruned campaign
// reports (and CI asserts == 0).
func (a *aggregator) notePrunedExecution(unsound bool) {
	a.prunedExecuted++
	if unsound {
		a.unsoundPrunes++
	}
}

// affinity mines the past-bucket signature affinity table: for every
// detected failure bucket aggregated so far (earlier seeds in the sweep),
// the coverage class of its example plan. The learning phase's ranker
// boosts plans in these classes — "a sibling of this plan found a bug
// before". Deterministic: derived only from the deterministic bucket
// state, and consumed as an order-free map.
func (a *aggregator) affinity() map[string]int {
	out := make(map[string]int)
	for sig, b := range a.buckets {
		if !b.Detected {
			continue
		}
		out[learn.ClassOf(a.examples[sig].plan)]++
	}
	return out
}
