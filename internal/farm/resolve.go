package farm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/workload"
)

// Name resolution shared by the single-process CLI (phtest) and the
// farm (coordinator validation up front, workers again at execution
// time). Keeping one resolver means a task that validated on the
// coordinator cannot fail to resolve on a worker.

// AllStrategyNames is the canonical strategy order — the matrix column
// order every report uses.
var AllStrategyNames = []string{"partial-history", "crashtuner", "cofi", "random"}

// AllTargetNames returns the target names in canonical (matrix row)
// order.
func AllTargetNames() []string {
	all := workload.AllTargets()
	out := make([]string, len(all))
	for i, t := range all {
		out[i] = t.Name
	}
	return out
}

// ScaleTargetNames returns the names of the canonical scale targets.
// They are not part of AllTargetNames (and so not of "all"): the
// committed evaluation artifacts pin the five-target matrix. They
// resolve by name, or all at once via the "scale" spec.
func ScaleTargetNames() []string {
	all := workload.ScaleTargets()
	out := make([]string, len(all))
	for i, t := range all {
		out[i] = t.Name
	}
	return out
}

// ResolveTargets parses a comma-separated target list ("all" for every
// matrix target, "scale" for the cluster-scale targets); fixed swaps in
// the fixed component variants (the no-detection correctness baseline).
func ResolveTargets(spec string, fixed bool) ([]core.Target, error) {
	var names []string
	if spec == "all" {
		names = AllTargetNames()
	} else if spec == "scale" {
		names = ScaleTargetNames()
	} else {
		for _, name := range strings.Split(spec, ",") {
			names = append(names, strings.TrimSpace(name))
		}
	}
	out := make([]core.Target, 0, len(names))
	for _, name := range names {
		t, err := ResolveTarget(name, fixed)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ResolveTarget resolves one target by name, searching the matrix
// targets and then the scale targets.
func ResolveTarget(name string, fixed bool) (core.Target, error) {
	for _, t := range workload.AllTargets() {
		if t.Name == name {
			if fixed {
				return workload.Fixed(t), nil
			}
			return t, nil
		}
	}
	for _, t := range workload.ScaleTargets() {
		if t.Name == name {
			if fixed {
				return workload.Fixed(t), nil
			}
			return t, nil
		}
	}
	have := append(AllTargetNames(), ScaleTargetNames()...)
	return core.Target{}, fmt.Errorf("unknown target %q (have: %s)", name, strings.Join(have, ", "))
}

// ResolveStrategies parses a comma-separated strategy list ("all" for
// the canonical four). randomSeed/randomN parameterize the random
// baseline's plan generator.
func ResolveStrategies(spec string, randomSeed int64, randomN int) ([]core.Strategy, error) {
	names := AllStrategyNames
	if spec != "all" {
		names = nil
		for _, name := range strings.Split(spec, ",") {
			names = append(names, strings.TrimSpace(name))
		}
	}
	out := make([]core.Strategy, 0, len(names))
	for _, name := range names {
		s, err := ResolveStrategy(name, randomSeed, randomN)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ResolveStrategy resolves one strategy by name. Planner knob mistakes
// fail loudly instead of silently planning nothing.
func ResolveStrategy(name string, randomSeed int64, randomN int) (core.Strategy, error) {
	var s core.Strategy
	switch name {
	case "partial-history":
		p := core.NewPlanner()
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("planner configuration: %v", err)
		}
		s = p
	case "crashtuner":
		s = baselines.CrashTuner{}
	case "cofi":
		s = baselines.CoFI{}
	case "random":
		s = baselines.Random{Seed: randomSeed, N: randomN}
	default:
		return nil, fmt.Errorf("unknown strategy %q (have: %s)", name, strings.Join(AllStrategyNames, ", "))
	}
	return s, nil
}

// FlagRules carries the engine-mode switches whose combinations the CLIs
// must agree on rejecting. Both phtest and phfarm (and the grid loader,
// for its per-toggle switches) route through ValidateFlags, so an inert
// or contradictory combination is rejected identically everywhere —
// a flag set that validated for a single-process run cannot behave
// differently when handed to the farm.
type FlagRules struct {
	Prune    bool
	Ranked   bool
	Explain  bool
	Minimize bool // phtest's deprecated -minimize alias; always false elsewhere
	Snapshot bool
	Fixed    bool
	Guided   bool
	Explore  bool // phtest's exhaustive mode; always false in the farm
}

// ValidateFlags fails fast on flag combinations that parse fine but make
// no sense together. Each rejected combination used to be accepted and
// silently misbehave: -ranked without -prune ran the learning phase in a
// mode no report distinguishes from plain ordering, -minimize alongside
// -explain double-specified the same pass through its deprecated alias,
// and -snapshot with -fixed would fork the fixed-variant baselines whose
// entire point is exercising the unmodified full-replay path.
func ValidateFlags(r FlagRules) error {
	if r.Ranked && !r.Prune {
		return fmt.Errorf("-ranked requires -prune: impact ranking orders the learning phase's kept set, which only exists when pruning runs")
	}
	if r.Minimize && r.Explain {
		return fmt.Errorf("-minimize and -explain are mutually exclusive: -minimize is a deprecated alias for -explain, pass only one")
	}
	if r.Snapshot && r.Fixed {
		return fmt.Errorf("-snapshot is incompatible with -fixed: fixed-variant runs are correctness baselines and must execute full replays")
	}
	if r.Explore {
		// Exhaustive mode is its own engine: the campaign scheduling and
		// reporting switches have no effect there, and accepting them
		// would silently run something other than what was asked for.
		// (-fixed IS allowed: certifying a fixed variant is the healthy
		// baseline the certificate exists for.)
		switch {
		case r.Guided:
			return fmt.Errorf("-explore is incompatible with -guided: exhaustive mode enumerates the schedule space, there is nothing for coverage guidance to schedule")
		case r.Prune:
			return fmt.Errorf("-explore is incompatible with -prune: exhaustive mode applies the learned model as partial-order reduction internally (-explore-por)")
		case r.Snapshot:
			return fmt.Errorf("-explore is incompatible with -snapshot: exhaustive mode manages its own checkpoint-tree forking")
		case r.Explain, r.Minimize:
			return fmt.Errorf("-explore is incompatible with -explain: witnesses are always minimized and explained")
		}
	}
	return nil
}

// ParseSeeds parses a comma-separated list of world seeds.
func ParseSeeds(spec string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-seeds: no seeds in %q", spec)
	}
	return out, nil
}
