package farm

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func journalPath(dir string) string { return filepath.Join(dir, journalFile) }

// TestJournalResumeByteIdentity is the crash-resume invariant: settle
// part of a campaign into a journal, "crash", resume with the remainder
// — and the merged artifact is byte-identical to an uninterrupted run.
func TestJournalResumeByteIdentity(t *testing.T) {
	spec := TaskSpec{
		Target:        "cass-op-400",
		Strategy:      "partial-history",
		Seeds:         []int64{1, 2},
		MaxExecutions: 30,
		Parallel:      2,
	}
	tasks := Plan([]string{spec.Target}, []string{spec.Strategy}, spec)
	if len(tasks) != 2 {
		t.Fatalf("got %d tasks, want 2", len(tasks))
	}
	fp := TasksFingerprint(tasks)
	cfg := spec.engineConfig(nil)

	// The uninterrupted reference.
	sup := inProcSupervisor(2)
	full, _ := supervisedRun(t, sup, tasks)
	fullMerged, _ := Collate(full)
	want := artifactBytes(t, fullMerged[0], cfg)

	// Simulate the interrupted first run: only task 0's result landed
	// before the "crash".
	dir := t.TempDir()
	j, resumed, err := OpenJournal(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != nil {
		t.Fatalf("fresh journal returned resumed tasks: %v", resumed)
	}
	if err := j.Result(0, full[0].Res, ""); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Resume: task 0 comes back settled, only task 1 re-dispatches.
	j2, resumed, err := OpenJournal(dir, fp, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0].Res == nil {
		t.Fatalf("resumed = %v, want task 0 settled", resumed)
	}
	var dispatched atomic.Int32
	sup2 := inProcSupervisor(2)
	base := sup2.Factory
	sup2.Factory = func(slot, spawn int) Transport {
		dispatched.Add(1)
		return base(slot, spawn)
	}
	sup2.Journal = j2
	results, report, interrupted, err := RunSupervised(context.Background(), sup2, tasks, resumed)
	j2.Close()
	if err != nil || interrupted {
		t.Fatalf("resumed run: err=%v interrupted=%v", err, interrupted)
	}
	if report.Resumed != 1 {
		t.Errorf("report.Resumed = %d, want 1", report.Resumed)
	}
	merged, incomplete := Collate(results)
	if len(incomplete) > 0 || len(merged) != 1 {
		t.Fatalf("resumed collate: merged=%d incomplete=%v", len(merged), incomplete)
	}
	if got := artifactBytes(t, merged[0], cfg); !bytes.Equal(got, want) {
		t.Error("resumed artifact differs from uninterrupted run")
	}

	// A fully-settled journal resumes to a no-op fleet: zero spawns.
	j3, resumed, err := OpenJournal(dir, fp, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(resumed) != 2 {
		t.Fatalf("second resume found %d settled tasks, want 2", len(resumed))
	}
	spawnsBefore := dispatched.Load()
	sup3 := inProcSupervisor(2)
	sup3.Factory = sup2.Factory
	results3, _, _, err := RunSupervised(context.Background(), sup3, tasks, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if n := dispatched.Load(); n != spawnsBefore {
		t.Errorf("fully-resumed run still spawned %d workers", n-spawnsBefore)
	}
	merged3, _ := Collate(results3)
	if got := artifactBytes(t, merged3[0], cfg); !bytes.Equal(got, want) {
		t.Error("fully-resumed artifact differs from uninterrupted run")
	}
}

// TestJournalTornTail: a journal whose last line tore mid-write (no
// newline, or unparseable) resumes cleanly — the torn task simply
// re-runs — and the next append starts on a fresh line.
func TestJournalTornTail(t *testing.T) {
	spec := TaskSpec{Target: "t", Strategy: "s", Seeds: []int64{1}}
	tasks := []TaskSpec{spec}
	fp := TasksFingerprint(tasks)

	for _, torn := range []string{
		`{"v":1,"kind":"resu`,     // unterminated partial write
		"{\"v\":1,\"kind\":\"x\n", // terminated but mangled JSON
	} {
		dir := t.TempDir()
		j, _, err := OpenJournal(dir, fp, false)
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		f, err := os.OpenFile(journalPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(torn)
		f.Close()

		j2, resumed, err := OpenJournal(dir, fp, true)
		if err != nil {
			t.Fatalf("torn tail %q not tolerated: %v", torn, err)
		}
		if len(resumed) != 0 {
			t.Errorf("torn tail %q resumed phantom tasks: %v", torn, resumed)
		}
		// Appending after the chop must leave every line parseable.
		if err := j2.Result(0, nil, "task error"); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		if _, _, err := OpenJournal(dir, fp, true); err != nil {
			t.Errorf("journal unreadable after post-torn append: %v", err)
		}
	}
}

// TestJournalCorruptMiddle: a mangled line with intact lines after it is
// corruption, not a torn tail — resume must fail loudly.
func TestJournalCorruptMiddle(t *testing.T) {
	spec := TaskSpec{Target: "t", Strategy: "s", Seeds: []int64{1}}
	tasks := []TaskSpec{spec}
	fp := TasksFingerprint(tasks)
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Result(0, nil, "x")
	j.Close()

	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitN(data, []byte("\n"), 2)
	mangled := append([]byte("GARBAGE NOT JSON\n"), lines[1]...)
	if err := os.WriteFile(journalPath(dir), append(lines[0], append([]byte("\n"), mangled...)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(dir, fp, true); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("mid-file corruption not detected: err=%v", err)
	}
}

// TestJournalGuards: version and fingerprint mismatches refuse to
// resume rather than silently mixing campaigns.
func TestJournalGuards(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(journalPath(dir),
		[]byte(`{"v":99,"kind":"header","fingerprint":"abc"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(dir, "abc", true); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future journal version accepted: err=%v", err)
	}

	dir2 := t.TempDir()
	j, _, err := OpenJournal(dir2, "fingerprint-A", false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := OpenJournal(dir2, "fingerprint-B", true); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Errorf("fingerprint mismatch accepted: err=%v", err)
	}

	// Headerless non-empty journal: refuse.
	dir3 := t.TempDir()
	if err := os.WriteFile(journalPath(dir3), []byte(`{"v":1,"kind":"result","task_id":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(dir3, "x", true); err == nil || !strings.Contains(err.Error(), "header") {
		t.Errorf("headerless journal accepted: err=%v", err)
	}

	// Missing journal resumes as a fresh run.
	dir4 := t.TempDir()
	j4, resumed, err := OpenJournal(dir4, "x", true)
	if err != nil || len(resumed) != 0 {
		t.Errorf("missing journal: err=%v resumed=%v, want fresh start", err, resumed)
	}
	if j4 != nil {
		j4.Close()
	}
}

// TestTasksFingerprint: any result-shaping change to the task list
// changes the fingerprint; identical lists agree.
func TestTasksFingerprint(t *testing.T) {
	tasks := Plan([]string{"a"}, []string{"s"}, TaskSpec{Seeds: []int64{1, 2}, MaxExecutions: 10})
	same := Plan([]string{"a"}, []string{"s"}, TaskSpec{Seeds: []int64{1, 2}, MaxExecutions: 10})
	if TasksFingerprint(tasks) != TasksFingerprint(same) {
		t.Error("identical task lists fingerprint differently")
	}
	for name, other := range map[string][]TaskSpec{
		"seeds":   Plan([]string{"a"}, []string{"s"}, TaskSpec{Seeds: []int64{1, 3}, MaxExecutions: 10}),
		"max":     Plan([]string{"a"}, []string{"s"}, TaskSpec{Seeds: []int64{1, 2}, MaxExecutions: 11}),
		"targets": Plan([]string{"b"}, []string{"s"}, TaskSpec{Seeds: []int64{1, 2}, MaxExecutions: 10}),
	} {
		if TasksFingerprint(tasks) == TasksFingerprint(other) {
			t.Errorf("changed %s, fingerprint unchanged", name)
		}
	}
}
