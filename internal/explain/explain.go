// Package explain turns a detected violation into a causal story a
// developer can read: the chain from the perturbed or suppressed
// observation, through the component whose partial view (H', S') diverged
// from the ground truth (H, S), through the action the component took (or
// failed to take) on that divergent view, down to the oracle violation —
// the §7 "minimal perturbation plus causal chain" report format.
//
// Explanations are pure functions of (target, plan, seed, reference trace,
// perturbed trace, violations): the simulation's determinism means an
// explanation is byte-identical across reruns, so it can be asserted in
// golden tests and diffed across code changes.
package explain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Step kinds, in causal order. A chain always ends with StepViolation.
const (
	StepPerturbation = "perturbation"           // the injected fault, as scheduled
	StepSuppressed   = "suppressed-observation" // a reference delivery the plan removed or stalled
	StepDivergence   = "divergence"             // first delivery where the component's view departs from the reference
	StepAction       = "action"                 // a write the component issued that the reference run did not
	StepMissing      = "missing-action"         // a reference write the component never issued
	StepViolation    = "violation"              // the oracle breach terminating the chain
)

// Step is one link of the causal chain.
type Step struct {
	Kind string `json:"kind"`
	// Time is the virtual time of the step (nanoseconds); -1 when the step
	// has no single instant (e.g. a missing action).
	Time   int64  `json:"time_ns"`
	Detail string `json:"detail"`
}

// Metrics quantifies the view divergence the perturbation induced in the
// affected component — the §4.2 pattern magnitudes.
type Metrics struct {
	// StalenessLagRevisions is the largest number of committed revisions
	// the component's observed frontier trailed the ground truth (§4.2.1).
	StalenessLagRevisions int64 `json:"staleness_lag_revisions"`
	// StalenessLagNanos is the largest virtual-time age of the component's
	// frontier: commit time of the newest committed event minus commit
	// time of the newest event the component had observed.
	StalenessLagNanos int64 `json:"staleness_lag_ns"`
	// GapWidth counts reference deliveries to the component that the
	// perturbed execution never delivered (§4.2.3).
	GapWidth int `json:"gap_width"`
	// TimeTravelEpisodes / TimeTravelDepth summarize revision regressions
	// in the component's observation order: how many times it re-observed
	// its own past, and the deepest regression in revisions (§4.2.2).
	TimeTravelEpisodes int   `json:"time_travel_episodes"`
	TimeTravelDepth    int64 `json:"time_travel_depth"`
	// ForcedRelists counts bursts of re-observed ADDED events — the
	// signature of a component re-listing state it had already seen (after
	// a restart, an upstream switch, or a compacted watch window).
	ForcedRelists int `json:"forced_relists"`
	// DroppedDeliveries counts watch pushes to the component lost in flight
	// in the perturbed run (flaky links, partitions) — observations the
	// component never received at all.
	DroppedDeliveries int `json:"dropped_deliveries"`
	// DuplicatedDeliveries counts watch pushes the component observed more
	// than once (duplicated links).
	DuplicatedDeliveries int `json:"duplicated_deliveries"`
	// RelistStorm is how many more full list operations the perturbed run
	// issued system-wide than the reference — the width of a §4.2 forced
	// relist storm (compaction racing watch resumption). It deliberately
	// counts every consumer — informer relists against apiservers AND
	// apiserver bootstraps against the store — because compaction
	// pressure's blast radius is the whole read path, not just the chain's
	// protagonist.
	RelistStorm int `json:"relist_storm_width"`
}

func (m Metrics) String() string {
	return fmt.Sprintf("staleness-lag=%drev/%s gap-width=%d time-travel=%dx/depth %d forced-relists=%d dropped=%d duplicated=%d relist-storm=%d",
		m.StalenessLagRevisions, sim.Duration(m.StalenessLagNanos), m.GapWidth,
		m.TimeTravelEpisodes, m.TimeTravelDepth, m.ForcedRelists,
		m.DroppedDeliveries, m.DuplicatedDeliveries, m.RelistStorm)
}

// Explanation is the full report for one detected bucket: the minimal
// plan's causal chain and divergence metrics for the affected component.
type Explanation struct {
	Target string `json:"target"`
	Bug    string `json:"bug"`
	Seed   int64  `json:"seed"`
	PlanID string `json:"plan_id"`
	Plan   string `json:"plan"`
	// Component is the component whose partial view the perturbation
	// corrupted (the chain's protagonist).
	Component string  `json:"component"`
	Chain     []Step  `json:"chain"`
	Metrics   Metrics `json:"metrics"`
}

// Explain runs the reference and the perturbed execution itself and
// derives the explanation. Campaign engines that already hold the
// reference trace should use FromTraces instead.
func Explain(t core.Target, p core.Plan, seed int64) *Explanation {
	ref, _ := core.ReferenceSeed(t, seed)
	pert, violations := perturbedTrace(t, p, seed)
	return FromTraces(t, p, seed, ref, pert, violations)
}

// perturbedTrace executes one plan with a recorder attached and returns
// the recorded trace plus the violations.
func perturbedTrace(t core.Target, p core.Plan, seed int64) (*trace.Trace, []oracle.Violation) {
	c := t.Build(seed)
	rec := trace.NewRecorder()
	rec.Attach(c.World.Network(), c.Store.Store())
	p.Apply(c)
	t.Workload(c)
	c.RunFor(t.Horizon)
	return rec.T, c.Violations()
}

// FromTraces derives the causal chain and divergence metrics from an
// already-recorded pair of executions. It never runs the cluster.
func FromTraces(t core.Target, p core.Plan, seed int64, ref, pert *trace.Trace, violations []oracle.Violation) *Explanation {
	e := &Explanation{
		Target: t.Name,
		Bug:    t.Bug,
		Seed:   seed,
		PlanID: p.ID(),
		Plan:   p.Describe(),
	}

	leaves := Leaves(p)
	comp := affectedComponent(leaves, ref, pert)
	e.Component = string(comp)

	// 1. Perturbation steps: each injected fault at its activation time.
	for _, leaf := range leaves {
		e.Chain = append(e.Chain, perturbationSteps(leaf, ref)...)
	}

	// 2. Divergence: the first delivery where the component's view departs
	// from the reference sequence. Time-travel plans get a sharper anchor:
	// the delivery where the restarted component's observed revision moves
	// backwards (positional comparison would only flag the re-list
	// deliveries as trailing extras, long after the stale read mattered).
	if comp != "" {
		st, ok := Step{}, false
		if hasTimeTravel(leaves) {
			st, ok = timeTravelDivergence(comp, pert)
		}
		if !ok {
			st, ok = divergenceStep(comp, ref, pert)
		}
		if ok {
			e.Chain = append(e.Chain, st)
		}
		// 3. Action / missing action after the divergence.
		if st, ok := actionStep(comp, ref, pert); ok {
			e.Chain = append(e.Chain, st)
		}
		e.Metrics = measure(comp, ref, pert)
	}

	// 4. The oracle violation terminates the chain.
	if v := bugViolation(violations, t.Bug); v != nil {
		detail := fmt.Sprintf("oracle %s: %s", v.Oracle, v.Detail)
		if v.Object != "" {
			detail = fmt.Sprintf("oracle %s on %s/%s: %s", v.Oracle, v.Kind, v.Object, v.Detail)
		}
		e.Chain = append(e.Chain, Step{Kind: StepViolation, Time: int64(v.Time), Detail: detail})
	}

	sortChain(e.Chain)
	return e
}

// Leaves flattens a plan into its primitive perturbations (SequencePlans
// are recursively expanded).
func Leaves(p core.Plan) []core.Plan {
	if seq, ok := p.(core.SequencePlan); ok {
		var out []core.Plan
		for _, sub := range seq.Plans {
			out = append(out, Leaves(sub)...)
		}
		return out
	}
	return []core.Plan{p}
}

// affectedComponent picks the chain's protagonist: the component the plan
// explicitly victimizes, else the component whose delivery sequence
// diverges earliest from the reference.
func affectedComponent(leaves []core.Plan, ref, pert *trace.Trace) sim.NodeID {
	for _, leaf := range leaves {
		switch q := leaf.(type) {
		case core.GapPlan:
			return q.Victim
		case core.DropDeliveryPlan:
			return q.Victim
		case core.DelayDeliveryPlan:
			return q.Victim
		case core.TimeTravelPlan:
			return q.Component
		case core.CrashPlan:
			return q.Component
		case core.FlakyLinkPlan:
			// A degraded link names two endpoints; the protagonist is the
			// consumer end (the component whose view the link feeds).
			if id, ok := consumerEnd(ref, q.A, q.B); ok {
				return id
			}
		case core.SlowLinkPlan:
			if id, ok := consumerEnd(ref, q.A, q.B); ok {
				return id
			}
		}
	}
	// Staleness, partition, and compaction plans name infrastructure, not
	// the consumer;
	// find the consumer whose view diverges first.
	bestComp := sim.NodeID("")
	bestIdx := -1
	for _, comp := range ref.Components() {
		idx := firstDivergence(ref.DeliveriesTo(comp), pert.DeliveriesTo(comp))
		if idx < 0 {
			continue
		}
		if bestIdx < 0 || idx < bestIdx || (idx == bestIdx && comp < bestComp) {
			bestComp, bestIdx = comp, idx
		}
	}
	if bestIdx >= 0 {
		return bestComp
	}
	if comps := ref.Components(); len(comps) > 0 {
		return comps[0]
	}
	return ""
}

// consumerEnd picks which endpoint of a degraded link is a watch consumer
// (received deliveries in the reference run), preferring b — mined link
// plans put the consumer second.
func consumerEnd(ref *trace.Trace, a, b sim.NodeID) (sim.NodeID, bool) {
	comps := ref.Components()
	for _, id := range []sim.NodeID{b, a} {
		for _, c := range comps {
			if c == id {
				return id, true
			}
		}
	}
	return "", false
}

// deliveryKey is the view-relevant identity of a delivery, ignoring
// transport details (sequence numbers, arrival jitter).
func deliveryKey(d trace.Delivery) string {
	return fmt.Sprintf("%s|%s|%s|rev%d", d.Kind, d.Name, d.EventType, d.Revision)
}

// firstDivergence returns the first index at which two delivery sequences
// differ, or -1 if one is a prefix of the other of equal length.
func firstDivergence(a, b []trace.Delivery) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if deliveryKey(a[i]) != deliveryKey(b[i]) {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// perturbationSteps renders one primitive plan as chain steps, locating
// suppressed observations in the reference trace where possible.
func perturbationSteps(leaf core.Plan, ref *trace.Trace) []Step {
	switch q := leaf.(type) {
	case core.GapPlan:
		steps := []Step{}
		if d, ok := findReferenceDelivery(ref, q); ok {
			steps = append(steps,
				Step{Kind: StepPerturbation, Time: int64(d.Time), Detail: leaf.Describe()},
				Step{Kind: StepSuppressed, Time: int64(d.Time),
					Detail: fmt.Sprintf("%s %s/%s (rev %d) to %s suppressed — the reference run delivered it at %s",
						d.EventType, d.Kind, d.Name, d.Revision, d.To, d.Time)})
			return steps
		}
		return []Step{{Kind: StepPerturbation, Time: int64(q.From), Detail: leaf.Describe()}}
	case core.DropDeliveryPlan:
		if d, ok := findDeliveryOccurrence(ref, q.Victim, q.Kind, q.Name, q.Type, q.Occurrence); ok {
			return []Step{
				{Kind: StepPerturbation, Time: int64(d.Time), Detail: leaf.Describe()},
				{Kind: StepSuppressed, Time: int64(d.Time),
					Detail: fmt.Sprintf("%s %s/%s (rev %d) to %s dropped at delivery — the reference run delivered it at %s",
						d.EventType, d.Kind, d.Name, d.Revision, d.To, d.Time)},
			}
		}
		return []Step{{Kind: StepPerturbation, Time: -1, Detail: leaf.Describe()}}
	case core.DelayDeliveryPlan:
		if d, ok := findDeliveryOccurrence(ref, q.Victim, q.Kind, q.Name, q.Type, q.Occurrence); ok {
			return []Step{
				{Kind: StepPerturbation, Time: int64(d.Time), Detail: leaf.Describe()},
				{Kind: StepSuppressed, Time: int64(d.Time),
					Detail: fmt.Sprintf("%s %s/%s (rev %d) to %s deferred by %s — the reference run delivered it at %s",
						d.EventType, d.Kind, d.Name, d.Revision, d.To, q.Delay, d.Time)},
			}
		}
		return []Step{{Kind: StepPerturbation, Time: -1, Detail: leaf.Describe()}}
	case core.StalenessPlan:
		steps := []Step{{Kind: StepPerturbation, Time: int64(q.From), Detail: leaf.Describe()}}
		if n, first, ok := stalledDeliveries(ref, q.Victim, q.From, q.Until); ok {
			steps = append(steps, Step{Kind: StepSuppressed, Time: int64(first.Time),
				Detail: fmt.Sprintf("%d reference deliveries through %s stalled behind the freeze, first: %s %s/%s (rev %d) to %s",
					n, q.Victim, first.EventType, first.Kind, first.Name, first.Revision, first.To)})
		}
		return steps
	case core.TimeTravelPlan:
		frozenRev := revisionAt(ref, q.FreezeAt)
		return []Step{
			{Kind: StepPerturbation, Time: int64(q.FreezeAt),
				Detail: fmt.Sprintf("freeze %s at %s — it preserves the historical view at revision %d", q.StaleAPI, q.FreezeAt, frozenRev)},
			{Kind: StepPerturbation, Time: int64(q.CrashAt),
				Detail: fmt.Sprintf("crash %s at %s and steer its restart onto frozen %s", q.Component, q.CrashAt, q.StaleAPI)},
		}
	case core.CrashPlan:
		return []Step{{Kind: StepPerturbation, Time: int64(q.At), Detail: leaf.Describe()}}
	case core.PartitionPlan:
		return []Step{{Kind: StepPerturbation, Time: int64(q.From), Detail: leaf.Describe()}}
	case core.SlowLinkPlan:
		return []Step{{Kind: StepPerturbation, Time: int64(q.From), Detail: leaf.Describe()}}
	case core.FlakyLinkPlan:
		return []Step{{Kind: StepPerturbation, Time: int64(q.From), Detail: leaf.Describe()}}
	case core.CompactionPressurePlan:
		return []Step{{Kind: StepPerturbation, Time: int64(q.At),
			Detail: fmt.Sprintf("%s — watch windows older than the floor now fail with ErrCompacted", leaf.Describe())}}
	default:
		return []Step{{Kind: StepPerturbation, Time: -1, Detail: leaf.Describe()}}
	}
}

// findReferenceDelivery locates the delivery a GapPlan suppresses in the
// reference trace (by occurrence, or the first window match).
func findReferenceDelivery(ref *trace.Trace, q core.GapPlan) (trace.Delivery, bool) {
	for _, d := range ref.Deliveries {
		if d.To != q.Victim || d.Kind != q.Kind || d.Name != q.Name {
			continue
		}
		if q.Type != "" && d.EventType != q.Type {
			continue
		}
		if q.Occurrence > 0 {
			if d.Occurrence == q.Occurrence {
				return d, true
			}
			continue
		}
		if d.Time >= q.From && (q.Until == 0 || d.Time <= q.Until) {
			return d, true
		}
	}
	return trace.Delivery{}, false
}

// findDeliveryOccurrence locates the occurrence-th reference delivery
// matching a delivery-coordinate plan, counting matching deliveries in
// arrival order — the same stream the delivery gate counts.
func findDeliveryOccurrence(ref *trace.Trace, victim sim.NodeID, kind cluster.Kind, name string, typ apiserver.EventType, occurrence int) (trace.Delivery, bool) {
	seen := 0
	for _, d := range ref.Deliveries {
		if d.To != victim || d.Kind != kind || d.Name != name {
			continue
		}
		if typ != "" && d.EventType != typ {
			continue
		}
		seen++
		if seen == occurrence {
			return d, true
		}
	}
	return trace.Delivery{}, false
}

// stalledDeliveries counts reference deliveries relayed by the frozen
// apiserver inside the freeze window and returns the first.
func stalledDeliveries(ref *trace.Trace, victim sim.NodeID, from, until sim.Time) (int, trace.Delivery, bool) {
	n := 0
	var first trace.Delivery
	for _, d := range ref.Deliveries {
		if d.From != victim || d.Time < from {
			continue
		}
		if until > 0 && d.Time > until {
			continue
		}
		if n == 0 {
			first = d
		}
		n++
	}
	return n, first, n > 0
}

// revisionAt returns the newest committed revision at or before t in the
// reference run — the view a frozen apiserver preserves.
func revisionAt(ref *trace.Trace, t sim.Time) int64 {
	var rev int64
	for _, e := range ref.Commits {
		if sim.Time(e.Time) <= t && e.Revision > rev {
			rev = e.Revision
		}
	}
	return rev
}

// divergenceStep describes where the component's observation sequence
// departs from the reference.
func divergenceStep(comp sim.NodeID, ref, pert *trace.Trace) (Step, bool) {
	rd, pd := ref.DeliveriesTo(comp), pert.DeliveriesTo(comp)
	idx := firstDivergence(rd, pd)
	if idx < 0 {
		return Step{}, false
	}
	describe := func(d trace.Delivery) string {
		return fmt.Sprintf("%s %s/%s (rev %d)", d.EventType, d.Kind, d.Name, d.Revision)
	}
	switch {
	case idx < len(rd) && idx < len(pd):
		return Step{Kind: StepDivergence, Time: int64(pd[idx].Time),
			Detail: fmt.Sprintf("%s's view diverges at delivery #%d: reference observed %s, perturbed run observed %s",
				comp, idx+1, describe(rd[idx]), describe(pd[idx]))}, true
	case idx < len(rd):
		return Step{Kind: StepDivergence, Time: int64(rd[idx].Time),
			Detail: fmt.Sprintf("%s's view diverges at delivery #%d: reference observed %s, perturbed run observed nothing further",
				comp, idx+1, describe(rd[idx]))}, true
	default:
		return Step{Kind: StepDivergence, Time: int64(pd[idx].Time),
			Detail: fmt.Sprintf("%s's view diverges at delivery #%d: perturbed run observed extra %s",
				comp, idx+1, describe(pd[idx]))}, true
	}
}

// hasTimeTravel reports whether any primitive plan is a time-travel
// perturbation.
func hasTimeTravel(leaves []core.Plan) bool {
	for _, leaf := range leaves {
		if _, ok := leaf.(core.TimeTravelPlan); ok {
			return true
		}
	}
	return false
}

// timeTravelDivergence anchors the divergence step for time-travel plans:
// the first delivery at which the component's observed revision moves
// backwards — the restarted component reading the frozen apiserver's
// historical view (paper §4.2.2).
func timeTravelDivergence(comp sim.NodeID, pert *trace.Trace) (Step, bool) {
	var maxRev int64
	for _, d := range pert.DeliveriesTo(comp) {
		if d.Revision > maxRev {
			maxRev = d.Revision
			continue
		}
		if d.Revision < maxRev {
			return Step{Kind: StepDivergence, Time: int64(d.Time),
				Detail: fmt.Sprintf("%s observes %s %s/%s at rev %d after having seen rev %d — its view travelled %d revisions back in time",
					comp, d.EventType, d.Kind, d.Name, d.Revision, maxRev, maxRev-d.Revision)}, true
		}
	}
	return Step{}, false
}

// writeKey is the intent-level identity of a write.
func writeKey(w trace.Write) string {
	return fmt.Sprintf("%s|%s|%s", w.Method, w.Kind, w.Name)
}

// actionStep finds the component's first action that departs from the
// reference write sequence: an extra write (it acted on the divergent
// view) or a missing one (the divergent view suppressed the action).
func actionStep(comp sim.NodeID, ref, pert *trace.Trace) (Step, bool) {
	var rw, pw []trace.Write
	for _, w := range ref.Writes {
		if w.From == comp {
			rw = append(rw, w)
		}
	}
	for _, w := range pert.Writes {
		if w.From == comp {
			pw = append(pw, w)
		}
	}
	n := len(rw)
	if len(pw) < n {
		n = len(pw)
	}
	for i := 0; i < n; i++ {
		if writeKey(rw[i]) != writeKey(pw[i]) {
			return Step{Kind: StepAction, Time: int64(pw[i].Time),
				Detail: fmt.Sprintf("%s issues %s %s/%s instead of the reference's %s %s/%s — acting on its divergent view",
					comp, pw[i].Method, pw[i].Kind, pw[i].Name, rw[i].Method, rw[i].Kind, rw[i].Name)}, true
		}
	}
	if len(pw) > len(rw) {
		w := pw[len(rw)]
		return Step{Kind: StepAction, Time: int64(w.Time),
			Detail: fmt.Sprintf("%s issues %s %s/%s — an action the reference run never took",
				comp, w.Method, w.Kind, w.Name)}, true
	}
	if len(rw) > len(pw) {
		w := rw[len(pw)]
		return Step{Kind: StepMissing, Time: -1,
			Detail: fmt.Sprintf("%s never issues %s %s/%s (the reference run did at %s)",
				comp, w.Method, w.Kind, w.Name, w.Time)}, true
	}
	return Step{}, false
}

// measure computes the divergence metrics for the affected component.
func measure(comp sim.NodeID, ref, pert *trace.Trace) Metrics {
	var m Metrics
	pd := pert.DeliveriesTo(comp)

	// Time travel: revision regressions in observation order, via the
	// history package's detector.
	var log history.ObservationLog
	for _, d := range pd {
		log.Record(history.Observation{
			Revision: d.Revision,
			Key:      fmt.Sprintf("%s/%s", d.Kind, d.Name),
			Time:     int64(d.Time),
		})
	}
	m.TimeTravelEpisodes = len(log.TimeTravels())
	m.TimeTravelDepth = log.MaxRegression()

	// Gap width: reference deliveries (by view-relevant identity) that the
	// perturbed execution never delivered to the component.
	seen := map[string]int{}
	for _, d := range pd {
		seen[deliveryKey(d)]++
	}
	for _, d := range ref.DeliveriesTo(comp) {
		k := deliveryKey(d)
		if seen[k] > 0 {
			seen[k]--
			continue
		}
		m.GapWidth++
	}

	// Staleness: walk commits and the component's deliveries in time
	// order, tracking how far the observed frontier trails the committed
	// one, in revisions and in commit-time age.
	commitTime := map[int64]sim.Time{}
	for _, e := range pert.Commits {
		commitTime[e.Revision] = sim.Time(e.Time)
	}
	var frontier int64
	di := 0
	for _, e := range pert.Commits {
		for di < len(pd) && pd[di].Time <= sim.Time(e.Time) {
			if pd[di].Revision > frontier {
				frontier = pd[di].Revision
			}
			di++
		}
		if frontier == 0 {
			continue // component had not observed anything yet
		}
		if lag := e.Revision - frontier; lag > m.StalenessLagRevisions {
			m.StalenessLagRevisions = lag
		}
		if ft, ok := commitTime[frontier]; ok {
			if age := int64(sim.Time(e.Time) - ft); age > m.StalenessLagNanos {
				m.StalenessLagNanos = age
			}
		}
	}

	// Forced relists: bursts of re-observed ADDED events (occurrence > 1)
	// — a component re-listing state it had already seen.
	inBurst := false
	for _, d := range pd {
		dup := d.EventType == "ADDED" && d.Occurrence > 1
		if dup && !inBurst {
			m.ForcedRelists++
		}
		inBurst = dup
	}

	// Gray-failure divergence: deliveries the link lost or echoed, and the
	// relist storm width — extra full lists versus the reference run (the
	// §4.2 cost of compaction racing watch resumption).
	m.DroppedDeliveries = pert.DroppedPushesTo(comp)
	m.DuplicatedDeliveries = pert.DuplicatePushesTo(comp)
	if storm := len(pert.Lists) - len(ref.Lists); storm > 0 {
		m.RelistStorm = storm
	}
	return m
}

// bugViolation returns the first violation of the target bug's oracle.
func bugViolation(violations []oracle.Violation, bug string) *oracle.Violation {
	for _, v := range violations {
		if v.Oracle == bug {
			vv := v
			return &vv
		}
	}
	return nil
}

// kindRank orders chain steps that share a timestamp causally.
func kindRank(kind string) int {
	switch kind {
	case StepPerturbation:
		return 0
	case StepSuppressed:
		return 1
	case StepDivergence:
		return 2
	case StepAction:
		return 3
	case StepMissing:
		return 4
	case StepViolation:
		return 5
	default:
		return 6
	}
}

// sortChain orders steps by time (unknown-time steps keep causal rank
// order at the position their rank dictates, sorted after timed steps of
// lower rank).
func sortChain(chain []Step) {
	sort.SliceStable(chain, func(i, j int) bool {
		// The oracle violation terminates the chain regardless of recorded
		// instants: oracles evaluate periodically, so a violation's
		// timestamp can precede later-collected evidence steps.
		vi, vj := chain[i].Kind == StepViolation, chain[j].Kind == StepViolation
		if vi != vj {
			return vj
		}
		ri, rj := kindRank(chain[i].Kind), kindRank(chain[j].Kind)
		ti, tj := chain[i].Time, chain[j].Time
		// Unknown times sort by rank alone.
		if ti < 0 || tj < 0 {
			if ri != rj {
				return ri < rj
			}
			return ti >= 0 && tj < 0
		}
		if ti != tj {
			return ti < tj
		}
		if ri != rj {
			return ri < rj
		}
		return chain[i].Detail < chain[j].Detail
	})
}

// Render prints the explanation as the indented text block phtest and
// traceview show (and golden tests pin down).
func (e *Explanation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s seed %d — minimal plan: %s\n", e.Target, e.Seed, e.Plan)
	fmt.Fprintf(&b, "  affected component: %s\n", e.Component)
	for i, st := range e.Chain {
		ts := "        ?"
		if st.Time >= 0 {
			ts = fmt.Sprintf("%9s", sim.Time(st.Time))
		}
		fmt.Fprintf(&b, "  %d. [%s] %-24s %s\n", i+1, ts, st.Kind+":", st.Detail)
	}
	fmt.Fprintf(&b, "  divergence: %s\n", e.Metrics)
	return b.String()
}

// RenderTimeline prints the chain as an ASCII divergence timeline: virtual
// time on the vertical axis, one row per step, bar length proportional to
// elapsed time since the first step.
func (e *Explanation) RenderTimeline() string {
	var first, last int64 = -1, -1
	for _, st := range e.Chain {
		if st.Time < 0 {
			continue
		}
		if first < 0 || st.Time < first {
			first = st.Time
		}
		if st.Time > last {
			last = st.Time
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %s seed %d (%s)\n", e.Target, e.Seed, e.Plan)
	if first < 0 {
		b.WriteString("  (no timed steps)\n")
		return b.String()
	}
	span := last - first
	const width = 40
	for _, st := range e.Chain {
		if st.Time < 0 {
			fmt.Fprintf(&b, "  %-11s %-40s %s\n", "?", "", st.Kind)
			continue
		}
		pos := 0
		if span > 0 {
			pos = int(int64(width) * (st.Time - first) / span)
		}
		bar := strings.Repeat("-", pos) + "*"
		fmt.Fprintf(&b, "  %-11s %-41s %s\n", sim.Time(st.Time), bar, st.Kind)
	}
	return b.String()
}
