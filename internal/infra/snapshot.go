// This file is the component half of the prefix-checkpoint layer
// (internal/sim/snapshot.go holds the simulation half). A cluster snapshot
// bundles the kernel's scheduling identity with every component's state;
// Snapshot.NewCluster rebuilds an equivalent cluster positioned mid-run,
// and InstallPending re-inserts the captured pending events with their
// sequence numbers shifted past a forked plan's allocation band.
//
// Sharing rules (see DESIGN.md, "Prefix checkpointing"): committed history
// events, apiserver watch windows, informer observation logs, and cached
// object pointers are shared copy-on-write; every mutable map (store KVs,
// caches, leases, queue sets, counters) is deep-copied at capture.
package infra

import (
	"fmt"
	"strings"

	"repro/internal/apiserver"
	"repro/internal/client"
	"repro/internal/controllers"
	"repro/internal/kubelet"
	"repro/internal/operators/cassandra"
	"repro/internal/oracle"
	"repro/internal/regions"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/store"
)

// Snapshot captures a snapshotable cluster at a quiescent instant.
type Snapshot struct {
	Opts   Options
	Kernel sim.KernelSnapshot
	Net    sim.NetworkSnapshot
	DownAt map[sim.NodeID]sim.Time

	Store     *store.Snapshot
	APIs      []*apiserver.Snapshot
	Kubelets  map[string]*kubelet.Snapshot
	Scheduler *scheduler.Snapshot // nil when the scheduler is disabled
	Volume    *controllers.VolumeSnapshot
	NodeLC    *controllers.NodeLifecycleSnapshot
	App       *controllers.AppSetSnapshot
	Cassandra *cassandra.Snapshot
	// RegionServers is keyed by server name (Opts.Regions.Servers entries).
	RegionServers map[string]*regions.ServerSnapshot
	RegionManager *regions.ManagerSnapshot
	AdminConn     *client.ConnSnapshot
	AdminUIDs     int
	Oracles       *oracle.RunnerSnapshot
}

// Snapshotable reports whether every component in this cluster has a
// snapshot/restore implementation. Every built-in component — apiservers,
// kubelets, scheduler, the volume/node-lifecycle/app controllers, the
// Cassandra operator, and the region service — now does, so every cluster
// assembled by New is snapshotable.
func (c *Cluster) Snapshotable() bool { return true }

// Capture snapshots the cluster. It fails (ok=false) when the instant is
// not quiescent: an untagged kernel event is pending, a network message is
// held, or a component RPC call is in flight. The caller should advance
// virtual time slightly and retry.
func (c *Cluster) Capture() (*Snapshot, bool) {
	if !c.Snapshotable() {
		return nil, false
	}
	if c.World.Network().HeldCount() > 0 {
		return nil, false
	}
	ks, ok := c.World.Kernel().CaptureSnapshot()
	if !ok {
		return nil, false
	}
	snap := &Snapshot{
		Opts:      c.Opts,
		Kernel:    ks,
		Net:       c.World.Network().Snapshot(),
		DownAt:    c.World.DownAtSnapshot(),
		Kubelets:  make(map[string]*kubelet.Snapshot, len(c.Kubelet)),
		AdminUIDs: c.Admin.uids.Counter(),
		Oracles:   c.Oracles.Snapshot(),
	}
	ss, ok := c.Store.Snapshot()
	if !ok {
		return nil, false
	}
	snap.Store = ss
	for _, api := range c.APIs {
		snap.APIs = append(snap.APIs, api.Snapshot())
	}
	for _, node := range c.Opts.Nodes {
		ksnap, ok := c.Kubelet[node].Snapshot()
		if !ok {
			return nil, false
		}
		snap.Kubelets[node] = ksnap
	}
	if c.Scheduler != nil {
		sc, ok := c.Scheduler.Snapshot()
		if !ok {
			return nil, false
		}
		snap.Scheduler = sc
	}
	if c.Volume != nil {
		vs, ok := c.Volume.Snapshot()
		if !ok {
			return nil, false
		}
		snap.Volume = vs
	}
	if c.NodeLC != nil {
		ns, ok := c.NodeLC.Snapshot()
		if !ok {
			return nil, false
		}
		snap.NodeLC = ns
	}
	if c.App != nil {
		as, ok := c.App.Snapshot()
		if !ok {
			return nil, false
		}
		snap.App = as
	}
	if c.Cassandra != nil {
		cass, ok := c.Cassandra.Snapshot()
		if !ok {
			return nil, false
		}
		snap.Cassandra = cass
	}
	if len(c.RegionServers) > 0 {
		snap.RegionServers = make(map[string]*regions.ServerSnapshot, len(c.RegionServers))
		for name, rs := range c.RegionServers {
			snap.RegionServers[name] = rs.Snapshot()
		}
	}
	if c.RegionManager != nil {
		ms, ok := c.RegionManager.Snapshot()
		if !ok {
			return nil, false
		}
		snap.RegionManager = ms
	}
	ac, ok := c.Admin.conn.Snapshot()
	if !ok {
		return nil, false
	}
	snap.AdminConn = ac
	return snap, true
}

// NewCluster rebuilds a cluster from the snapshot, positioned at the
// capture instant. No timers are armed and network down flags are applied
// after every component has re-registered; the caller re-installs pending
// kernel events via InstallPending after applying the forked plan and
// rehydrating the workload.
func (s *Snapshot) NewCluster() (*Cluster, error) {
	w := sim.NewRestoredWorld(
		sim.WorldConfig{Seed: s.Opts.Seed, Latency: sim.Millisecond, Jitter: sim.Millisecond / 2},
		s.Kernel.Now, s.Kernel.Steps, s.Kernel.RNGDraws, s.Net)
	c := &Cluster{
		Opts:          s.Opts,
		World:         w,
		Hosts:         make(map[string]*kubelet.Host),
		Kubelet:       make(map[string]*kubelet.Kubelet),
		RegionServers: make(map[string]*regions.RegionServer),
		Oracles:       oracle.NewRunner(),
	}
	c.Store = store.RestoreServer(w, s.Store)
	for _, as := range s.APIs {
		c.APIs = append(c.APIs, apiserver.Restore(w, as))
	}
	for _, node := range s.Opts.Nodes {
		ks, ok := s.Kubelets[node]
		if !ok {
			return nil, fmt.Errorf("infra: snapshot missing kubelet for node %s", node)
		}
		k := kubelet.Restore(w, ks)
		c.Kubelet[node] = k
		c.Hosts[node] = k.Host()
	}
	if s.Scheduler != nil {
		c.Scheduler = scheduler.Restore(w, s.Scheduler)
	}
	if s.Volume != nil {
		c.Volume = controllers.RestoreVolume(w, s.Volume)
	}
	if s.NodeLC != nil {
		c.NodeLC = controllers.RestoreNodeLifecycle(w, s.NodeLC)
	}
	if s.App != nil {
		c.App = controllers.RestoreAppSet(w, s.App)
	}
	if s.Cassandra != nil {
		c.Cassandra = cassandra.Restore(w, s.Cassandra)
	}
	if s.Opts.Regions != nil {
		// Registration order matches New (and the oracle set depends on the
		// same Opts.Regions.Servers order).
		for _, name := range s.Opts.Regions.Servers {
			rs, ok := s.RegionServers[name]
			if !ok {
				return nil, fmt.Errorf("infra: snapshot missing region server %s", name)
			}
			c.RegionServers[name] = regions.RestoreServer(w, name, rs)
		}
		if s.RegionManager != nil {
			c.RegionManager = regions.RestoreManager(w, s.RegionManager)
		}
	}
	c.Admin = restoreAdmin(c, s.AdminConn, s.AdminUIDs)
	// Oracles: re-register the same set in the same order, then transplant
	// their recorded violations and private state.
	c.addOracles()
	if err := c.Oracles.RestoreFrom(s.Oracles); err != nil {
		return nil, err
	}
	c.Oracles.BindPeriodic(w, c.Opts.OraclePeriod)
	// Down flags last: Network.Register (called by every component restore
	// above) clears them.
	w.Network().RestoreDown(s.Net)
	w.RestoreDownAt(s.DownAt)
	return c, nil
}

// InstallPending re-inserts the snapshot's pending kernel events into the
// restored cluster. Events allocated after the Build boundary (seq >
// buildSeq) are shifted by the forked plan's sequence allocation delta —
// signed, because a checkpoint-tree fork may apply a plan that allocates
// fewer sequence numbers than the base plan the snapshot was captured
// under. Workload-owned and plan-owned events are skipped: rehydrating the
// workload and re-applying the plan recreate them with exactly the
// sequence numbers a full replay would use.
func (c *Cluster) InstallPending(pending []sim.PendingEvent, buildSeq uint64, shift int64) error {
	for _, pe := range pending {
		if pe.Tag.Owner == "workload" || pe.Tag.Owner == "plan" {
			continue
		}
		fn, err := c.rearm(pe.Tag)
		if err != nil {
			return err
		}
		seq := pe.Seq
		if seq > buildSeq {
			seq = uint64(int64(seq) + shift)
		}
		if _, err := c.World.Kernel().RestorePending(pe.At, seq, pe.Tag, fn); err != nil {
			return err
		}
	}
	return nil
}

// rearm routes a pending event tag to its owning component.
func (c *Cluster) rearm(tag sim.EventTag) (func(), error) {
	owner := sim.NodeID(tag.Owner)
	switch {
	case tag.Owner == "oracles":
		return c.Oracles.Rearm(tag)
	case owner == StoreID:
		return c.Store.Rearm(tag)
	case owner == scheduler.ID:
		if c.Scheduler == nil {
			return nil, fmt.Errorf("infra: pending event for disabled scheduler: %v", tag)
		}
		return c.Scheduler.Rearm(tag)
	case strings.HasPrefix(tag.Owner, "api-"):
		for _, api := range c.APIs {
			if api.ID() == owner {
				return api.Rearm(tag)
			}
		}
		return nil, fmt.Errorf("infra: pending event for unknown apiserver: %v", tag)
	case strings.HasPrefix(tag.Owner, "kubelet-"):
		node := strings.TrimPrefix(tag.Owner, "kubelet-")
		k, ok := c.Kubelet[node]
		if !ok {
			return nil, fmt.Errorf("infra: pending event for unknown kubelet: %v", tag)
		}
		return k.Rearm(tag)
	case owner == controllers.VolumeControllerID:
		if c.Volume == nil {
			return nil, fmt.Errorf("infra: pending event for disabled volume controller: %v", tag)
		}
		return c.Volume.Rearm(tag)
	case owner == controllers.NodeLifecycleID:
		if c.NodeLC == nil {
			return nil, fmt.Errorf("infra: pending event for disabled node lifecycle controller: %v", tag)
		}
		return c.NodeLC.Rearm(tag)
	case owner == controllers.AppSetControllerID:
		if c.App == nil {
			return nil, fmt.Errorf("infra: pending event for disabled appset controller: %v", tag)
		}
		return c.App.Rearm(tag)
	case owner == cassandra.OperatorID:
		if c.Cassandra == nil {
			return nil, fmt.Errorf("infra: pending event for disabled cassandra operator: %v", tag)
		}
		return c.Cassandra.Rearm(tag)
	case owner == regions.ManagerID:
		// The manager's move timers are untagged by design (transient
		// closures over in-flight transitions); a tagged manager event in a
		// snapshot means the contract was broken.
		return nil, fmt.Errorf("infra: unexpected tagged region-manager event: %v", tag)
	default:
		return nil, fmt.Errorf("infra: pending event with unknown owner: %v", tag)
	}
}
