// Operator testing: run the paper's partial-history testing tool against
// the (buggy) Cassandra operator and watch it find the three real bugs the
// paper reports (cassandra-operator-398, -400, -402), then verify the fixed
// operator survives the same campaigns.
//
// Run with: go run ./examples/operatortest
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/operators/cassandra"
	"repro/internal/workload"
)

func main() {
	fmt.Println("== partial-history campaign against the Cassandra operator ==")
	fmt.Println()

	targets := []core.Target{
		workload.TargetCass398(),
		workload.TargetCass400(),
		workload.TargetCass402(),
	}

	fmt.Println("--- stock operator (as shipped) ---")
	detecting := map[string]core.Plan{}
	for _, t := range targets {
		res, plan := campaignWithPlan(t)
		if res.Detected {
			detecting[t.Name] = plan
			fmt.Printf("%-12s FOUND after %3d executions: %s\n", t.Name, res.Executions, res.FirstViolation.Detail)
			fmt.Printf("             triggering perturbation: %s\n", res.DetectingPlan)
		} else {
			fmt.Printf("%-12s not found in %d executions\n", t.Name, res.Executions)
		}
	}

	fmt.Println()
	fmt.Println("--- fixed operator, replaying each triggering perturbation ---")
	for _, t := range targets {
		plan, ok := detecting[t.Name]
		if !ok {
			continue
		}
		fixed := withFixedOperator(t)
		exec := core.RunPlan(fixed, plan)
		if exec.Detected {
			fmt.Printf("%-12s STILL BUGGY under the triggering perturbation\n", t.Name)
		} else {
			fmt.Printf("%-12s fix holds: the triggering perturbation no longer violates %s\n", t.Name, t.Bug)
		}
	}
	fmt.Println()
	fmt.Println("(note: under *unbounded* notification blackouts even fixed components")
	fmt.Println(" miss liveness deadlines — no component can act on information it never")
	fmt.Println(" receives; bounding that divergence is the paper's §6.2 epoch proposal.)")
}

// campaignWithPlan runs the campaign and also returns the detecting plan
// object itself (core.CampaignResult only carries its description).
func campaignWithPlan(t core.Target) (core.CampaignResult, core.Plan) {
	ref, _ := core.Reference(t)
	planner := core.NewPlanner()
	plans := planner.Plans(t, ref)
	res := core.CampaignResult{Target: t.Name, Strategy: planner.Name(), PlansTotal: len(plans)}
	for i, p := range plans {
		if i >= 400 {
			break
		}
		exec := core.RunPlan(t, p)
		res.Executions = i + 1
		if exec.Detected {
			res.Detected = true
			res.DetectingPlan = p.Describe()
			for _, v := range exec.Violations {
				if v.Oracle == t.Bug {
					fv := v
					res.FirstViolation = &fv
					break
				}
			}
			return res, p
		}
	}
	return res, nil
}

// withFixedOperator rebuilds the target's cluster with the fixed operator.
func withFixedOperator(t core.Target) core.Target {
	orig := t.Build
	t.Build = func(seed int64) *infra.Cluster {
		c := orig(seed)
		opts := c.Opts
		opts.Cassandra.Fixes = cassandra.AllFixed()
		return infra.New(opts)
	}
	return t
}
