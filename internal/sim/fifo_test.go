package sim

import (
	"testing"
	"testing/quick"
)

// TestPropertyPerLinkFIFO: regardless of jitter and interleaving across
// links, messages between one (from, to) pair are delivered in send order —
// the stream (TCP) semantics watch channels rely on. A violation of this
// once produced a real bug in this repository: jitter reordered two watch
// pushes and the informer's revision dedup silently dropped the late one.
func TestPropertyPerLinkFIFO(t *testing.T) {
	f := func(seed int64, jitterRaw uint8, nRaw uint8) bool {
		jitter := Duration(jitterRaw%20) * Millisecond
		n := int(nRaw%50) + 10
		k := NewKernel(seed)
		net := NewNetwork(k, Millisecond, jitter)

		type rx struct {
			link string
			seq  int
		}
		var deliveries []rx
		for _, id := range []NodeID{"x", "y"} {
			id := id
			net.Register(id, HandlerFunc(func(m *Message) {
				p := m.Payload.([2]any)
				deliveries = append(deliveries, rx{link: p[0].(string), seq: p[1].(int)})
			}))
		}
		net.Register("a", HandlerFunc(func(*Message) {}))
		net.Register("b", HandlerFunc(func(*Message) {}))

		// Interleave sends on four links with per-link sequence numbers.
		counters := map[string]int{}
		rng := k.Rand()
		links := []struct{ from, to NodeID }{
			{"a", "x"}, {"a", "y"}, {"b", "x"}, {"b", "y"},
		}
		for i := 0; i < n; i++ {
			l := links[rng.Intn(len(links))]
			key := string(l.from) + "->" + string(l.to)
			counters[key]++
			net.Send(l.from, l.to, "msg", [2]any{key, counters[key]})
			// Occasionally let time pass so sends span multiple instants.
			if rng.Intn(3) == 0 {
				k.RunFor(Duration(rng.Intn(3)) * Millisecond)
			}
		}
		k.Drain()

		last := map[string]int{}
		for _, d := range deliveries {
			if d.seq != last[d.link]+1 {
				return false
			}
			last[d.link] = d.seq
		}
		total := 0
		for _, c := range counters {
			total += c
		}
		return len(deliveries) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestHoldReleaseCanReorder documents the one sanctioned reordering path:
// Hold/Release is how the perturbation engine breaks stream order on
// purpose.
func TestHoldReleaseCanReorder(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, Millisecond, 0)
	var got []int
	net.Register("dst", HandlerFunc(func(m *Message) { got = append(got, m.Payload.(int)) }))
	net.Register("src", HandlerFunc(func(*Message) {}))

	holdFirst := true
	var heldSeq uint64
	net.AddInterceptor(InterceptorFunc(func(m *Message) Decision {
		if holdFirst {
			holdFirst = false
			heldSeq = m.Seq
			return Decision{Verdict: Hold}
		}
		return Decision{Verdict: Pass}
	}))
	net.Send("src", "dst", "msg", 1) // held
	net.Send("src", "dst", "msg", 2)
	k.Drain()
	net.Release(heldSeq)
	k.Drain()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("got %v, want [2 1] (deliberate reorder)", got)
	}
}
