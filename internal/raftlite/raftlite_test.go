package raftlite

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/wal"
)

// cluster bundles n raft nodes with per-node applied logs.
type cluster struct {
	w       *sim.World
	nodes   map[sim.NodeID]*Node
	applied map[sim.NodeID][]string
	ids     []sim.NodeID
	logs    map[sim.NodeID]*wal.Log
}

func newCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	w := sim.NewWorld(sim.WorldConfig{Seed: seed, Latency: sim.Millisecond, Jitter: sim.Millisecond / 2})
	c := &cluster{
		w:       w,
		nodes:   make(map[sim.NodeID]*Node),
		applied: make(map[sim.NodeID][]string),
		logs:    make(map[sim.NodeID]*wal.Log),
	}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, sim.NodeID(fmt.Sprintf("r%d", i+1)))
	}
	for _, id := range c.ids {
		id := id
		log := wal.New()
		c.logs[id] = log
		c.nodes[id] = NewNode(w, id, c.ids, DefaultConfig(), log, func(e Entry) {
			c.applied[id] = append(c.applied[id], string(e.Data))
		})
		// Applied state is volatile: a restarted node replays its log from
		// scratch, so the test's applied sink must reset on crash exactly
		// like a real state machine would be rebuilt.
		w.AddProcess(&resetOnCrash{Node: c.nodes[id], reset: func() { c.applied[id] = nil }})
	}
	return c
}

// resetOnCrash wraps a Node to clear the test's applied sink on crash.
type resetOnCrash struct {
	*Node
	reset func()
}

func (r *resetOnCrash) Crash() {
	r.reset()
	r.Node.Crash()
}

func (c *cluster) leader() *Node {
	for _, id := range c.ids {
		n := c.nodes[id]
		if n.Role() == Leader && !c.w.Crashed(id) {
			return n
		}
	}
	return nil
}

// settle runs until a leader exists (or times out).
func (c *cluster) settle(t *testing.T, d sim.Duration) *Node {
	t.Helper()
	deadline := c.w.Now().Add(d)
	for c.w.Now() < deadline {
		c.w.Kernel().RunFor(50 * sim.Millisecond)
		if l := c.leader(); l != nil {
			return l
		}
	}
	t.Fatalf("no leader within %s", d)
	return nil
}

func (c *cluster) propose(t *testing.T, data string) uint64 {
	t.Helper()
	l := c.leader()
	if l == nil {
		t.Fatal("propose: no leader")
	}
	idx, ok := l.Propose([]byte(data))
	if !ok {
		t.Fatal("propose rejected by leader")
	}
	return idx
}

func TestSingleLeaderElected(t *testing.T) {
	c := newCluster(t, 3, 1)
	c.settle(t, 2*sim.Second)
	c.w.Kernel().RunFor(sim.Second)
	leaders := 0
	for _, id := range c.ids {
		if c.nodes[id].Role() == Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want 1", leaders)
	}
	// Followers agree on who leads.
	l := c.leader()
	for _, id := range c.ids {
		if got := c.nodes[id].Leader(); got != l.ID() {
			t.Fatalf("%s thinks leader is %q, want %q", id, got, l.ID())
		}
	}
}

func TestReplicationAndCommit(t *testing.T) {
	c := newCluster(t, 3, 2)
	c.settle(t, 2*sim.Second)
	for i := 0; i < 5; i++ {
		c.propose(t, fmt.Sprintf("cmd-%d", i))
	}
	c.w.Kernel().RunFor(sim.Second)
	for _, id := range c.ids {
		if got := len(c.applied[id]); got != 5 {
			t.Fatalf("%s applied %d entries, want 5", id, got)
		}
		for i, data := range c.applied[id] {
			if data != fmt.Sprintf("cmd-%d", i) {
				t.Fatalf("%s applied %q at %d", id, data, i)
			}
		}
	}
}

func TestProposeOnFollowerRejected(t *testing.T) {
	c := newCluster(t, 3, 3)
	l := c.settle(t, 2*sim.Second)
	for _, id := range c.ids {
		if id == l.ID() {
			continue
		}
		if _, ok := c.nodes[id].Propose([]byte("x")); ok {
			t.Fatalf("follower %s accepted a proposal", id)
		}
	}
}

func TestLeaderCrashFailover(t *testing.T) {
	c := newCluster(t, 3, 4)
	l1 := c.settle(t, 2*sim.Second)
	c.propose(t, "before-crash")
	c.w.Kernel().RunFor(500 * sim.Millisecond)

	if err := c.w.Crash(l1.ID()); err != nil {
		t.Fatal(err)
	}
	l2 := c.settle(t, 3*sim.Second)
	if l2.ID() == l1.ID() {
		t.Fatal("crashed leader still leads")
	}
	idx, ok := l2.Propose([]byte("after-crash"))
	if !ok {
		t.Fatal("new leader rejected proposal")
	}
	c.w.Kernel().RunFor(sim.Second)

	// Old leader rejoins and catches up, including the new entry.
	if err := c.w.Restart(l1.ID()); err != nil {
		t.Fatal(err)
	}
	c.w.Kernel().RunFor(2 * sim.Second)
	got := c.applied[l1.ID()]
	if len(got) < int(idx) {
		t.Fatalf("rejoined node applied %d entries, want >= %d", len(got), idx)
	}
	if got[0] != "before-crash" || got[len(got)-1] != "after-crash" {
		t.Fatalf("rejoined node log = %v", got)
	}
}

func TestMinorityPartitionStillCommits(t *testing.T) {
	c := newCluster(t, 5, 5)
	l := c.settle(t, 2*sim.Second)
	// Partition one follower away.
	var victim sim.NodeID
	for _, id := range c.ids {
		if id != l.ID() {
			victim = id
			break
		}
	}
	for _, id := range c.ids {
		if id != victim {
			c.w.Network().Partition(victim, id)
		}
	}
	c.propose(t, "with-minority-out")
	c.w.Kernel().RunFor(sim.Second)
	applied := 0
	for _, id := range c.ids {
		if id != victim && len(c.applied[id]) == 1 {
			applied++
		}
	}
	if applied != 4 {
		t.Fatalf("connected nodes applied on %d/4", applied)
	}
	if len(c.applied[victim]) != 0 {
		t.Fatal("partitioned node applied uncommitted-to-it entry")
	}
	// Heal: victim catches up.
	for _, id := range c.ids {
		if id != victim {
			c.w.Network().Heal(victim, id)
		}
	}
	c.w.Kernel().RunFor(2 * sim.Second)
	if len(c.applied[victim]) != 1 {
		t.Fatalf("healed node applied %d, want 1", len(c.applied[victim]))
	}
}

func TestMajorityPartitionBlocksCommit(t *testing.T) {
	c := newCluster(t, 3, 6)
	l := c.settle(t, 2*sim.Second)
	// Isolate the leader from both followers.
	for _, id := range c.ids {
		if id != l.ID() {
			c.w.Network().Partition(l.ID(), id)
		}
	}
	// Old leader can still append locally but must not commit.
	l.Propose([]byte("doomed"))
	c.w.Kernel().RunFor(2 * sim.Second)
	for _, id := range c.ids {
		for _, data := range c.applied[id] {
			if data == "doomed" {
				t.Fatalf("%s applied an uncommittable entry", id)
			}
		}
	}
	// The majority side elects a new leader.
	var newLeader *Node
	for _, id := range c.ids {
		if id != l.ID() && c.nodes[id].Role() == Leader {
			newLeader = c.nodes[id]
		}
	}
	if newLeader == nil {
		t.Fatal("majority side did not elect a leader")
	}
	// New leader commits; after healing, the old leader's divergent entry
	// is overwritten (the log-repair path).
	if _, ok := newLeader.Propose([]byte("survives")); !ok {
		t.Fatal("new leader rejected proposal")
	}
	c.w.Kernel().RunFor(sim.Second)
	for _, id := range c.ids {
		if id != l.ID() {
			c.w.Network().Heal(l.ID(), id)
		}
	}
	c.w.Kernel().RunFor(2 * sim.Second)
	got := c.applied[l.ID()]
	if len(got) != 1 || got[0] != "survives" {
		t.Fatalf("old leader applied %v, want [survives]", got)
	}
}

// TestFollowerAppliedIsCommittedPrefix is the package's partial-history
// claim: at every instant, each node's applied sequence is a prefix of the
// (eventual) committed history — followers may lag but never diverge.
func TestFollowerAppliedIsCommittedPrefix(t *testing.T) {
	c := newCluster(t, 3, 7)
	c.settle(t, 2*sim.Second)
	for i := 0; i < 20; i++ {
		if l := c.leader(); l != nil {
			l.Propose([]byte(fmt.Sprintf("e%02d", i)))
		}
		c.w.Kernel().RunFor(20 * sim.Millisecond)
		// Invariant check at every step: all applied sequences are
		// prefixes of the longest one.
		var longest []string
		for _, id := range c.ids {
			if len(c.applied[id]) > len(longest) {
				longest = c.applied[id]
			}
		}
		for _, id := range c.ids {
			seq := c.applied[id]
			for j := range seq {
				if seq[j] != longest[j] {
					t.Fatalf("%s diverged at %d: %q vs %q", id, j, seq[j], longest[j])
				}
			}
		}
	}
	c.w.Kernel().RunFor(sim.Second)
	for _, id := range c.ids {
		if len(c.applied[id]) != 20 {
			t.Fatalf("%s applied %d, want 20", id, len(c.applied[id]))
		}
	}
}

func TestCrashRecoveryFromWAL(t *testing.T) {
	c := newCluster(t, 3, 8)
	c.settle(t, 2*sim.Second)
	for i := 0; i < 3; i++ {
		c.propose(t, fmt.Sprintf("persisted-%d", i))
		c.w.Kernel().RunFor(200 * sim.Millisecond)
	}
	// Crash and restart every node (rolling, so the cluster survives).
	for _, id := range c.ids {
		if err := c.w.Crash(id); err != nil {
			t.Fatal(err)
		}
		c.w.Kernel().RunFor(100 * sim.Millisecond)
		c.applied[id] = nil // applied state is volatile; will be re-applied
		if err := c.w.Restart(id); err != nil {
			t.Fatal(err)
		}
		c.w.Kernel().RunFor(sim.Second)
	}
	c.settle(t, 3*sim.Second)
	c.w.Kernel().RunFor(2 * sim.Second)
	for _, id := range c.ids {
		if got := len(c.applied[id]); got != 3 {
			t.Fatalf("%s re-applied %d entries after restart, want 3", id, got)
		}
	}
}
