package infra

import (
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Admin is the cluster's administrative client — the "user" of the
// infrastructure. Workloads drive the cluster through it. The admin always
// uses quorum reads so that workload actions themselves are never confused
// by cache staleness; staleness is the system-under-test's problem.
type Admin struct {
	c    *Cluster
	conn *client.Conn
	uids *cluster.UIDGen
}

// AdminID is the admin client's network identity.
const AdminID sim.NodeID = "admin"

func newAdmin(c *Cluster) *Admin {
	a := &Admin{
		c:    c,
		uids: cluster.NewUIDGen("admin"),
	}
	a.conn = client.NewConn(c.World, AdminID, APIServerID(0), 300*sim.Millisecond)
	c.World.Network().Register(AdminID, sim.HandlerFunc(func(m *sim.Message) {
		a.conn.HandleMessage(m)
	}))
	return a
}

// restoreAdmin reconstructs the admin client from a checkpoint (snapshot
// orchestration only).
func restoreAdmin(c *Cluster, conn *client.ConnSnapshot, uidCounter int) *Admin {
	a := &Admin{
		c:    c,
		uids: cluster.NewUIDGen("admin"),
	}
	a.uids.SetCounter(uidCounter)
	a.conn = client.RestoreConn(c.World, conn)
	c.World.Network().Register(AdminID, sim.HandlerFunc(func(m *sim.Message) {
		a.conn.HandleMessage(m)
	}))
	return a
}

// Conn exposes the raw connection for custom workload steps.
func (a *Admin) Conn() *client.Conn { return a.conn }

// CreatePod creates a pod; empty node leaves it unscheduled (scheduler
// path), otherwise it is bound directly.
func (a *Admin) CreatePod(name, node, image string, done func(error)) {
	pod := cluster.NewPod(name, a.uids.Next(), cluster.PodSpec{
		NodeName: node,
		Phase:    cluster.PodPending,
		Image:    image,
	})
	a.conn.Create(pod, func(_ *cluster.Object, err error) { callback(done, err) })
}

// MarkPodDeleted sets the pod's DeletionTimestamp (two-phase deletion mark,
// e1 in Figure 3c).
func (a *Admin) MarkPodDeleted(name string, done func(error)) {
	a.conn.Get(cluster.KindPod, name, true, func(pod *cluster.Object, found bool, err error) {
		if err != nil || !found {
			callback(done, errOrNotFound(err, found))
			return
		}
		upd := pod.Clone()
		upd.Meta.DeletionTimestamp = int64(a.c.World.Now())
		a.conn.Update(upd, func(_ *cluster.Object, err error) { callback(done, err) })
	})
}

// ForceDeletePod removes the pod object immediately (e2).
func (a *Admin) ForceDeletePod(name string, done func(error)) {
	a.conn.Delete(cluster.KindPod, name, 0, func(err error) { callback(done, err) })
}

// MigratePod performs the Figure 2 rolling-upgrade move: mark+delete the
// pod, wait for it to disappear from ground truth, then re-create it (same
// name, new UID) bound to toNode.
func (a *Admin) MigratePod(name, toNode, image string, done func(error)) {
	a.MarkPodDeleted(name, func(err error) {
		if err != nil {
			callback(done, err)
			return
		}
		a.waitPodGone(name, 64, func(err error) {
			if err != nil {
				callback(done, err)
				return
			}
			a.CreatePod(name, toNode, image, done)
		})
	})
}

// waitPodGone polls ground truth until the pod object disappears (the
// kubelet finalizes it) or attempts run out.
func (a *Admin) waitPodGone(name string, attempts int, done func(error)) {
	a.conn.Get(cluster.KindPod, name, true, func(_ *cluster.Object, found bool, err error) {
		if err == nil && !found {
			callback(done, nil)
			return
		}
		if attempts <= 0 {
			callback(done, errTimeoutWaiting{what: "pod " + name + " deletion"})
			return
		}
		a.c.World.Kernel().Schedule(25*sim.Millisecond, func() {
			a.waitPodGone(name, attempts-1, done)
		})
	})
}

// CreatePVC creates a bound claim owned by a pod.
func (a *Admin) CreatePVC(name, ownerPod string, done func(error)) {
	pvc := cluster.NewPVC(name, a.uids.Next(), cluster.PVCSpec{
		OwnerPod: ownerPod,
		Phase:    cluster.PVCBound,
		SizeGB:   10,
	})
	a.conn.Create(pvc, func(_ *cluster.Object, err error) { callback(done, err) })
}

// DeleteNode removes a node object from the cluster state and kills the
// machine behind it (containers die, kubelet process stops). This is the
// "node deleted" event of Kubernetes-56261.
func (a *Admin) DeleteNode(name string, done func(error)) {
	if kl, ok := a.c.Kubelet[name]; ok {
		_ = a.c.World.Crash(kl.ID())
	}
	if host, ok := a.c.Hosts[name]; ok {
		host.Reset()
	}
	a.conn.Delete(cluster.KindNode, name, 0, func(err error) { callback(done, err) })
}

// CreateAppSet creates a replicated-application object for the app
// controller to reconcile.
func (a *Admin) CreateAppSet(name string, replicas int, image string, done func(error)) {
	app := cluster.NewAppSet(name, a.uids.Next(), cluster.AppSetSpec{Replicas: replicas, Image: image})
	a.conn.Create(app, func(_ *cluster.Object, err error) { callback(done, err) })
}

// UpdateAppSet changes an AppSet's replica count and/or image (a rolling
// upgrade when the image changes).
func (a *Admin) UpdateAppSet(name string, replicas int, image string, done func(error)) {
	a.conn.Get(cluster.KindAppSet, name, true, func(app *cluster.Object, found bool, err error) {
		if err != nil || !found {
			callback(done, errOrNotFound(err, found))
			return
		}
		upd := app.Clone()
		upd.AppSet.Replicas = replicas
		upd.AppSet.Image = image
		a.conn.Update(upd, func(_ *cluster.Object, err error) { callback(done, err) })
	})
}

// CreateCassandra creates the CassandraCluster CR.
func (a *Admin) CreateCassandra(name string, replicas int, done func(error)) {
	cr := cluster.NewCassandra(name, a.uids.Next(), cluster.CassandraSpec{Replicas: replicas})
	a.conn.Create(cr, func(_ *cluster.Object, err error) { callback(done, err) })
}

// ScaleCassandra sets the CR's desired replica count.
func (a *Admin) ScaleCassandra(name string, replicas int, done func(error)) {
	a.conn.Get(cluster.KindCassandra, name, true, func(cr *cluster.Object, found bool, err error) {
		if err != nil || !found {
			callback(done, errOrNotFound(err, found))
			return
		}
		upd := cr.Clone()
		upd.Cassandra.Replicas = replicas
		a.conn.Update(upd, func(_ *cluster.Object, err error) { callback(done, err) })
	})
}

func callback(done func(error), err error) {
	if done != nil {
		done(err)
	}
}

type errTimeoutWaiting struct{ what string }

func (e errTimeoutWaiting) Error() string { return "admin: timed out waiting for " + e.what }

type errNotFoundT struct{}

func (errNotFoundT) Error() string { return "admin: object not found" }

func errOrNotFound(err error, found bool) error {
	if err != nil {
		return err
	}
	if !found {
		return errNotFoundT{}
	}
	return nil
}
