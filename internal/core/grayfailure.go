// Gray-failure perturbation plans: degraded-but-alive links and compaction
// pressure. Crash and partition plans model binary failure; real partial
// histories also arise when infrastructure merely degrades — a fail-slow
// link stretches staleness, a flaky link drops or duplicates watch
// deliveries, and aggressive store compaction races watch resumption into
// forced relists (the §4.2 hazard). These plans give the planner a
// vocabulary for that middle ground.
package core

import (
	"fmt"

	"repro/internal/infra"
	"repro/internal/sim"
)

// SlowLinkPlan degrades the link between A and B with extra latency and
// jitter for a window — a fail-slow (gray) link. Watch pushes still arrive,
// just late: components fed through the link observe a smoothly lagging
// (H', S') without any binary failure an operator could alarm on.
type SlowLinkPlan struct {
	A, B   sim.NodeID
	Extra  sim.Duration // added one-way latency
	Jitter sim.Duration // extra uniform jitter in [0, Jitter)
	From   sim.Time
	Until  sim.Time // zero = degraded until the end
}

// ID implements Plan.
func (p SlowLinkPlan) ID() string {
	return fmt.Sprintf("slowlink/%s-%s/+%d~%d@%d-%d", p.A, p.B, p.Extra, p.Jitter, p.From, p.Until)
}

// Describe implements Plan.
func (p SlowLinkPlan) Describe() string {
	return fmt.Sprintf("slow link %s<->%s (+%s latency, ~%s jitter) in [%s,%s]",
		p.A, p.B, p.Extra, p.Jitter, p.From, p.Until)
}

// Apply implements Plan.
func (p SlowLinkPlan) Apply(c *infra.Cluster) {
	k := c.World.Kernel()
	net := c.World.Network()
	k.At(p.From, func() {
		net.SetLinkQuality(p.A, p.B, sim.LinkQuality{ExtraLatency: p.Extra, ExtraJitter: p.Jitter})
	})
	if p.Until > p.From {
		k.At(p.Until, func() { net.ClearLinkQuality(p.A, p.B) })
	}
}

// FlakyLinkPlan degrades the link between A and B with probabilistic drop,
// duplication, and bounded reorder for a window. Unlike GapPlan — which
// surgically drops events about one named object — a flaky link loses and
// repeats deliveries indiscriminately, modelling a lossy overlay or a
// faulty NIC: the component's (H', S') develops unpredictable holes and
// echoes while the link stays "up".
type FlakyLinkPlan struct {
	A, B           sim.NodeID
	DropPercent    int
	DupPercent     int
	ReorderPercent int
	ReorderDelay   sim.Duration // zero = the network's default bound
	From           sim.Time
	Until          sim.Time // zero = degraded until the end
}

// ID implements Plan.
func (p FlakyLinkPlan) ID() string {
	return fmt.Sprintf("flaky/%s-%s/d%d-u%d-r%d@%d-%d",
		p.A, p.B, p.DropPercent, p.DupPercent, p.ReorderPercent, p.From, p.Until)
}

// Describe implements Plan.
func (p FlakyLinkPlan) Describe() string {
	return fmt.Sprintf("flaky link %s<->%s (drop %d%%, dup %d%%, reorder %d%%) in [%s,%s]",
		p.A, p.B, p.DropPercent, p.DupPercent, p.ReorderPercent, p.From, p.Until)
}

// Apply implements Plan.
func (p FlakyLinkPlan) Apply(c *infra.Cluster) {
	k := c.World.Kernel()
	net := c.World.Network()
	k.At(p.From, func() {
		net.SetLinkQuality(p.A, p.B, sim.LinkQuality{
			DropPercent:    p.DropPercent,
			DupPercent:     p.DupPercent,
			ReorderPercent: p.ReorderPercent,
			ReorderDelay:   p.ReorderDelay,
		})
	})
	if p.Until > p.From {
		k.At(p.Until, func() { net.ClearLinkQuality(p.A, p.B) })
	}
}

// CompactionPressurePlan compacts the store aggressively at a mined moment
// and keeps it compacted (a tight retain limit) from then on. Any watcher
// that must resume from a revision older than the compaction floor gets
// ErrCompacted and is forced into a full relist — the §4.2 "forced relist"
// hazard. With a Victim, the plan also pulses a partition between the
// victim apiserver and the store around At, guaranteeing the victim's watch
// falls behind the compaction floor: on heal its gap recovery fails with
// ErrCompacted and it must bootstrap from scratch, silently losing every
// event in the gap for its connected clients.
type CompactionPressurePlan struct {
	At         sim.Time
	Keep       int        // retain limit after compaction (min 2)
	Victim     sim.NodeID // optional apiserver to stall across the compaction
	PulseWidth sim.Duration
}

// ID implements Plan.
func (p CompactionPressurePlan) ID() string {
	return fmt.Sprintf("compact/%s/keep%d@%d-w%d", p.Victim, p.Keep, p.At, p.PulseWidth)
}

// Describe implements Plan.
func (p CompactionPressurePlan) Describe() string {
	if p.Victim == "" {
		return fmt.Sprintf("compact store to last %d revisions at %s", p.keep(), p.At)
	}
	return fmt.Sprintf("stall %s and compact store to last %d revisions at %s (pulse %s)",
		p.Victim, p.keep(), p.At, p.pulse())
}

func (p CompactionPressurePlan) keep() int {
	if p.Keep < 2 {
		return 2
	}
	return p.Keep
}

func (p CompactionPressurePlan) pulse() sim.Duration {
	if p.PulseWidth <= 0 {
		// Must outlast the apiserver's resync silence threshold (500ms) so
		// the victim's recovery races the compaction, not the pulse.
		return 700 * sim.Millisecond
	}
	return p.PulseWidth
}

// Apply implements Plan.
func (p CompactionPressurePlan) Apply(c *infra.Cluster) {
	k := c.World.Kernel()
	net := c.World.Network()
	if p.Victim != "" {
		k.At(p.At, func() { net.Partition(p.Victim, infra.StoreID) })
		k.At(p.At.Add(p.pulse()), func() { net.Heal(p.Victim, infra.StoreID) })
	}
	// Compact shortly after the pulse starts so writes committed during the
	// stall fall behind the compaction floor.
	compactAt := p.At
	if p.Victim != "" {
		compactAt = p.At.Add(p.pulse() / 2)
	}
	k.At(compactAt, func() {
		st := c.Store.Store()
		keep := p.keep()
		if first := st.Revision() - int64(keep) + 1; first > 1 {
			st.CompactTo(first)
		}
		st.SetRetainLimit(keep)
	})
}
