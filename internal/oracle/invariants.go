package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/kubelet"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/store"
)

// Oracle names (stable identifiers used by experiments and reports).
const (
	NameUniquePod          = "UniquePod"
	NameSchedulerProgress  = "SchedulerProgress"
	NameNoOrphanPVC        = "NoOrphanPVC"
	NameNoLivePVCDeletion  = "NoLivePVCDeletion"
	NameScaleDownCompletes = "ScaleDownCompletes"
	NameCASAtomicity       = "CASAtomicity"
)

// objLister returns a lister of all objects of a kind from ground truth
// (the store) that reuses its typed result slice while the store revision
// is unchanged. Decodes are memoized in the store per (key, revision) —
// oracles run every tick and most objects are unchanged between ticks — so
// the returned objects are shared and must never be mutated.
func objLister(st *store.Store, kind cluster.Kind) func() []*cluster.Object {
	prefix := cluster.KindPrefix(kind)
	lastRev := int64(-1)
	var objs []*cluster.Object
	return func() []*cluster.Object {
		if st.Revision() == lastRev {
			return objs
		}
		vals := st.DecodedRange(prefix, decodeObject)
		objs = make([]*cluster.Object, 0, len(vals))
		for _, v := range vals {
			objs = append(objs, v.(*cluster.Object))
		}
		lastRev = st.Revision()
		return objs
	}
}

func decodeObject(value []byte, rev int64) (any, error) {
	return cluster.Decode(value, rev)
}

// decodeOne is the single-key analogue of decodeState.
func decodeOne(st *store.Store, kind cluster.Kind, name string) (*cluster.Object, bool) {
	v, ok := st.DecodedGet(cluster.Key(kind, name), decodeObject)
	if !ok {
		return nil, false
	}
	return v.(*cluster.Object), true
}

// UniquePod checks the Kubernetes-59848 safety guarantee: at most one host
// runs a container for any pod name at any time.
func UniquePod(hosts []*kubelet.Host) Oracle {
	// seen is reused across ticks (cleared, not reallocated): the oracle
	// runs every tick and the no-violation case must stay allocation-free.
	seen := map[string]bool{}
	return Func{
		OracleName: NameUniquePod,
		CheckFunc: func(now sim.Time) *Violation {
			clear(seen)
			dup := false
			for _, h := range hosts {
				for _, name := range h.RunningNames() {
					if seen[name] {
						dup = true
					}
					seen[name] = true
				}
			}
			if !dup {
				return nil
			}
			// Violation path (rare): rebuild the full name->hosts view to
			// report the lexically first offender deterministically.
			running := map[string][]string{}
			for _, h := range hosts {
				for _, name := range h.RunningNames() {
					running[name] = append(running[name], h.Name)
				}
			}
			names := make([]string, 0, len(running))
			for n := range running {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				if len(running[n]) > 1 {
					sort.Strings(running[n])
					return &Violation{
						Oracle: NameUniquePod,
						Time:   now,
						Detail: fmt.Sprintf("pod %q running on multiple hosts: %s", n, strings.Join(running[n], ",")),
						Kind:   string(cluster.KindPod),
						Object: n,
					}
				}
			}
			return nil
		},
	}
}

// SchedulerProgress checks the Kubernetes-56261 liveness guarantee: a pod
// must not stay unscheduled longer than patience while a ready node with
// free capacity exists in ground truth. The returned oracle is Stateful
// (its pending-since tracker survives prefix-checkpoint forks).
func SchedulerProgress(st *store.Store, patience sim.Duration) Oracle {
	return &schedulerProgress{
		patience:     patience,
		pendingSince: map[string]sim.Time{},
		pods:         objLister(st, cluster.KindPod),
		nodes:        objLister(st, cluster.KindNode),
	}
}

type schedulerProgress struct {
	patience     sim.Duration
	pendingSince map[string]sim.Time
	pods, nodes  func() []*cluster.Object
	used         map[string]int  // reused per tick
	seen         map[string]bool // reused per tick
}

// Name implements Oracle.
func (o *schedulerProgress) Name() string { return NameSchedulerProgress }

// SnapshotState implements Stateful: a copy of the pending-since tracker.
func (o *schedulerProgress) SnapshotState() any {
	out := make(map[string]sim.Time, len(o.pendingSince))
	for k, v := range o.pendingSince {
		out[k] = v
	}
	return out
}

// RestoreState implements Stateful.
func (o *schedulerProgress) RestoreState(s any) {
	src := s.(map[string]sim.Time)
	o.pendingSince = make(map[string]sim.Time, len(src))
	for k, v := range src {
		o.pendingSince[k] = v
	}
}

// Check implements Oracle.
func (o *schedulerProgress) Check(now sim.Time) *Violation {
	pendingSince := o.pendingSince
	pods := o.pods()
	nodes := o.nodes()
	if o.used == nil {
		o.used = map[string]int{}
		o.seen = map[string]bool{}
	}
	used, seen := o.used, o.seen
	clear(used)
	clear(seen)
	for _, p := range pods {
		if p.Pod != nil && p.Pod.NodeName != "" && !p.Terminating() {
			used[p.Pod.NodeName]++
		}
	}
	freeNode := false
	for _, n := range nodes {
		if n.Node != nil && n.Node.Ready && n.Node.Capacity-used[n.Meta.Name] > 0 {
			freeNode = true
			break
		}
	}
	for _, p := range pods {
		if p.Pod == nil || p.Pod.NodeName != "" || p.Terminating() {
			continue
		}
		seen[p.Meta.Name] = true
		first, ok := pendingSince[p.Meta.Name]
		if !ok {
			pendingSince[p.Meta.Name] = now
			continue
		}
		if freeNode && now.Sub(first) > o.patience {
			return &Violation{
				Oracle:    NameSchedulerProgress,
				Time:      now,
				Detail:    fmt.Sprintf("pod %q unscheduled for %s despite free ready nodes", p.Meta.Name, now.Sub(first)),
				Kind:      string(cluster.KindPod),
				Object:    p.Meta.Name,
				Component: "scheduler",
			}
		}
	}
	for name := range pendingSince {
		if !seen[name] {
			delete(pendingSince, name)
		}
	}
	return nil
}

// NoOrphanPVC checks the volume-release guarantee ([17], op-398): a Bound
// PVC whose owner pod has been gone from ground truth for longer than grace
// is an orphan (storage leak).
func NoOrphanPVC(st *store.Store, grace sim.Duration) Oracle {
	orphanSince := map[string]sim.Time{}
	listPods := objLister(st, cluster.KindPod)
	listPVCs := objLister(st, cluster.KindPVC)
	pods := map[string]bool{} // reused per tick
	seen := map[string]bool{} // reused per tick
	return Func{
		OracleName: NameNoOrphanPVC,
		CheckFunc: func(now sim.Time) *Violation {
			clear(pods)
			clear(seen)
			for _, p := range listPods() {
				pods[p.Meta.Name] = true
			}
			for _, pvc := range listPVCs() {
				if pvc.PVC == nil || pvc.PVC.Phase != cluster.PVCBound || pvc.PVC.OwnerPod == "" {
					continue
				}
				if pods[pvc.PVC.OwnerPod] {
					continue
				}
				seen[pvc.Meta.Name] = true
				first, ok := orphanSince[pvc.Meta.Name]
				if !ok {
					orphanSince[pvc.Meta.Name] = now
					continue
				}
				if now.Sub(first) > grace {
					return &Violation{
						Oracle: NameNoOrphanPVC,
						Time:   now,
						Detail: fmt.Sprintf("PVC %q still Bound %s after owner pod %q vanished", pvc.Meta.Name, now.Sub(first), pvc.PVC.OwnerPod),
						Kind:   string(cluster.KindPVC),
						Object: pvc.Meta.Name,
					}
				}
			}
			for name := range orphanSince {
				if !seen[name] {
					delete(orphanSince, name)
				}
			}
			return nil
		},
	}
}

// InstallNoLivePVCDeletion hooks the store's commit stream and reports a
// violation whenever a PVC is deleted while its owner pod still exists —
// the op-402 safety breach (data loss for a live member). Event-driven: it
// reports directly to the runner.
func InstallNoLivePVCDeletion(st *store.Store, r *Runner) {
	st.AddNotifyHook(func(events []history.Event) {
		for _, e := range events {
			if e.Type != history.Delete {
				continue
			}
			kind, name, err := cluster.ParseKey(e.Key)
			if err != nil || kind != cluster.KindPVC {
				continue
			}
			// Recover the owner from the last version is impossible post
			// delete; instead rely on naming convention lookup via the
			// PVC's recorded owner in the pre-delete state, which the
			// store no longer has. We therefore check: does any live pod
			// claim this PVC name pattern "<pod>-data"?
			owner := strings.TrimSuffix(name, "-data")
			if owner == name {
				continue
			}
			if pod, ok := decodeOne(st, cluster.KindPod, owner); ok {
				if !pod.Terminating() {
					r.Report(Violation{
						Oracle: NameNoLivePVCDeletion,
						Time:   sim.Time(e.Time),
						Detail: fmt.Sprintf("PVC %q deleted while owner pod %q is alive", name, owner),
						Kind:   string(cluster.KindPVC),
						Object: name,
					})
				}
			}
		}
	})
}

// ScaleDownCompletes checks the op-400 liveness guarantee: within patience
// of the last CR spec change, the member pod set must equal exactly
// {<name>-0 .. <name>-(R-1)} and no decommission may be in flight.
func ScaleDownCompletes(st *store.Store, crName string, patience sim.Duration) Oracle {
	var lastSpecChange sim.Time
	var lastReplicas = -1
	listPods := objLister(st, cluster.KindPod)
	return Func{
		OracleName: NameScaleDownCompletes,
		CheckFunc: func(now sim.Time) *Violation {
			cr, ok := decodeOne(st, cluster.KindCassandra, crName)
			if !ok || cr.Cassandra == nil {
				return nil
			}
			if cr.Cassandra.Replicas != lastReplicas {
				lastReplicas = cr.Cassandra.Replicas
				lastSpecChange = now
				return nil
			}
			if now.Sub(lastSpecChange) < patience {
				return nil
			}
			want := map[string]bool{}
			for i := 0; i < cr.Cassandra.Replicas; i++ {
				want[fmt.Sprintf("%s-%d", crName, i)] = true
			}
			got := map[string]bool{}
			for _, p := range listPods() {
				if p.Pod != nil && p.Pod.App == crName && !p.Terminating() {
					got[p.Meta.Name] = true
				}
			}
			if cr.Cassandra.Decommissioning != "" {
				return &Violation{
					Oracle: NameScaleDownCompletes,
					Time:   now,
					Detail: fmt.Sprintf("decommission of %q still in flight %s after spec change", cr.Cassandra.Decommissioning, now.Sub(lastSpecChange)),
					Kind:   string(cluster.KindCassandra),
					Object: crName,
				}
			}
			if !sameSet(want, got) {
				return &Violation{
					Oracle: NameScaleDownCompletes,
					Time:   now,
					Detail: fmt.Sprintf("members %v != desired %v %s after spec change", keysOf(got), keysOf(want), now.Sub(lastSpecChange)),
					Kind:   string(cluster.KindCassandra),
					Object: crName,
				}
			}
			return nil
		},
	}
}

// CASAtomicity checks the HBASE-3136 guarantee: no region is served by two
// region servers at once.
func CASAtomicity(servers []*regions.RegionServer) Oracle {
	return Func{
		OracleName: NameCASAtomicity,
		CheckFunc: func(now sim.Time) *Violation {
			dual := regions.DualOwners(servers)
			if len(dual) == 0 {
				return nil
			}
			names := make([]string, 0, len(dual))
			for r := range dual {
				names = append(names, r)
			}
			sort.Strings(names)
			r0 := names[0]
			return &Violation{
				Oracle: NameCASAtomicity,
				Time:   now,
				Detail: fmt.Sprintf("region %q served by %s", r0, strings.Join(dual[r0], " and ")),
				Kind:   "Region",
				Object: r0,
			}
		},
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
