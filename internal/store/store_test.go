package store

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/history"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	rev := s.Put("/a", []byte("1"))
	if rev != 1 {
		t.Fatalf("rev = %d", rev)
	}
	kv, srev, ok := s.Get("/a")
	if !ok || string(kv.Value) != "1" || srev != 1 {
		t.Fatalf("get = %+v %d %v", kv, srev, ok)
	}
	if kv.CreateRevision != 1 || kv.ModRevision != 1 || kv.Version != 1 {
		t.Fatalf("mvcc meta = %+v", kv)
	}
	rev = s.Put("/a", []byte("2"))
	kv, _, _ = s.Get("/a")
	if kv.CreateRevision != 1 || kv.ModRevision != 2 || kv.Version != 2 {
		t.Fatalf("after update = %+v", kv)
	}
	if _, err := s.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("/a"); ok {
		t.Fatal("deleted key visible")
	}
	if _, err := s.Delete("/a"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	// Re-create starts a new incarnation.
	s.Put("/a", []byte("3"))
	kv, _, _ = s.Get("/a")
	if kv.Version != 1 || kv.CreateRevision != 4 {
		t.Fatalf("reincarnation = %+v", kv)
	}
}

func TestRangePrefix(t *testing.T) {
	s := New()
	s.Put("/pods/a", []byte("1"))
	s.Put("/pods/b", []byte("2"))
	s.Put("/nodes/x", []byte("3"))
	kvs, rev := s.Range("/pods/")
	if len(kvs) != 2 || rev != 3 {
		t.Fatalf("range = %v rev=%d", kvs, rev)
	}
	if kvs[0].Key != "/pods/a" || kvs[1].Key != "/pods/b" {
		t.Fatalf("range order = %v", kvs)
	}
	all, _ := s.Range("")
	if len(all) != 3 {
		t.Fatalf("empty prefix should match all, got %d", len(all))
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("/a", []byte("abc"))
	kv, _, _ := s.Get("/a")
	kv.Value[0] = 'X'
	kv2, _, _ := s.Get("/a")
	if string(kv2.Value) != "abc" {
		t.Fatal("Get leaked internal buffer")
	}
}

func TestHistoryMatchesMutations(t *testing.T) {
	s := New()
	s.Put("/a", []byte("1"))
	s.Put("/b", []byte("2"))
	s.Put("/a", []byte("3"))
	s.Delete("/b")
	h := s.History()
	if h.Len() != 4 || h.LastRevision() != 4 {
		t.Fatalf("history = %d events last %d", h.Len(), h.LastRevision())
	}
	e := h.At(2)
	if e.Type != history.Put || e.Key != "/a" || e.PrevRev != 1 {
		t.Fatalf("event 3 = %+v", e)
	}
	d := h.At(3)
	if d.Type != history.Delete || d.PrevRev != 2 {
		t.Fatalf("event 4 = %+v", d)
	}
	// Materializing the history yields the live state.
	st := history.Materialize(h)
	if st.Len() != 1 {
		t.Fatalf("materialized len = %d", st.Len())
	}
	if it, ok := st.Get("/a"); !ok || string(it.Value) != "3" {
		t.Fatalf("materialized /a = %+v %v", it, ok)
	}
}

func TestWatchReplaysBacklogThenStreams(t *testing.T) {
	s := New()
	s.Put("/pods/a", []byte("1"))
	s.Put("/pods/b", []byte("2"))
	var got []history.Event
	_, err := s.Watch("/pods/", 0, func(evs []history.Event) { got = append(got, evs...) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("backlog = %v", got)
	}
	s.Put("/pods/c", []byte("3"))
	s.Put("/nodes/x", []byte("4")) // outside prefix
	if len(got) != 3 || got[2].Key != "/pods/c" {
		t.Fatalf("stream = %v", got)
	}
}

func TestWatchFromCurrentRevisionSkipsBacklog(t *testing.T) {
	s := New()
	s.Put("/a", []byte("1"))
	var got []history.Event
	_, err := s.Watch("", s.Revision(), func(evs []history.Event) { got = append(got, evs...) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("unexpected backlog: %v", got)
	}
	s.Put("/b", []byte("2"))
	if len(got) != 1 || got[0].Key != "/b" {
		t.Fatalf("got %v", got)
	}
}

func TestWatchCancel(t *testing.T) {
	s := New()
	var got []history.Event
	h, _ := s.Watch("", 0, func(evs []history.Event) { got = append(got, evs...) })
	s.Put("/a", []byte("1"))
	h.Cancel()
	h.Cancel() // idempotent
	s.Put("/b", []byte("2"))
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestWatchFutureRevision(t *testing.T) {
	s := New()
	if _, err := s.Watch("", 5, nil); !errors.Is(err, ErrFutureRevision) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompactionBreaksOldWatch(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Put("/k", []byte{byte(i)})
	}
	s.CompactTo(6) // drops revisions 1..5
	if s.CompactedRevision() != 5 {
		t.Fatalf("compacted = %d", s.CompactedRevision())
	}
	if _, err := s.Watch("", 3, nil); !errors.Is(err, ErrCompacted) {
		t.Fatalf("watch at 3: %v", err)
	}
	// Watching from exactly the compaction boundary works (events > 5 retained).
	var got []history.Event
	if _, err := s.Watch("", 5, func(evs []history.Event) { got = append(got, evs...) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("replay after compaction = %d events", len(got))
	}
	if _, err := s.EventsSince("", 2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("EventsSince: %v", err)
	}
}

func TestRetainLimitAutoCompacts(t *testing.T) {
	s := New()
	s.SetRetainLimit(4)
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("/k%d", i), []byte("v"))
	}
	h := s.History()
	if h.Len() != 4 {
		t.Fatalf("retained = %d, want 4", h.Len())
	}
	if h.FirstRevision() != 7 {
		t.Fatalf("first retained = %d, want 7", h.FirstRevision())
	}
	// Live state is unaffected by compaction.
	if s.Len() != 10 {
		t.Fatalf("live keys = %d", s.Len())
	}
}

func TestTxnCompareAndSwap(t *testing.T) {
	s := New()
	rev := s.Put("/lock", []byte("a"))
	ok, _ := s.CompareAndSwap("/lock", rev, []byte("b"))
	if !ok {
		t.Fatal("CAS with correct rev failed")
	}
	ok, _ = s.CompareAndSwap("/lock", rev, []byte("c")) // stale rev
	if ok {
		t.Fatal("CAS with stale rev succeeded")
	}
	kv, _, _ := s.Get("/lock")
	if string(kv.Value) != "b" {
		t.Fatalf("value = %q", kv.Value)
	}
	// Create-if-absent via expectRev 0.
	ok, _ = s.CompareAndSwap("/new", 0, []byte("x"))
	if !ok {
		t.Fatal("create-if-absent failed")
	}
	ok, _ = s.CompareAndSwap("/new", 0, []byte("y"))
	if ok {
		t.Fatal("create-if-absent on existing key succeeded")
	}
}

func TestTxnBranches(t *testing.T) {
	s := New()
	s.Put("/a", []byte("1"))
	// Failing guard with a failure branch.
	res, err := s.Txn(
		[]Cmp{{Key: "/a", Target: CmpValue, BytVal: []byte("nope")}},
		[]Op{{Type: OpPut, Key: "/won", Value: []byte("t")}},
		[]Op{{Type: OpPut, Key: "/fallback", Value: []byte("ran")}},
	)
	if err != nil || res.Succeeded {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if _, _, ok := s.Get("/fallback"); !ok {
		t.Fatal("failure branch did not run")
	}
	if _, _, ok := s.Get("/won"); ok {
		t.Fatal("success branch ran despite failed guard")
	}
	// Failing guard without failure branch → ErrTxnFailed.
	if _, err := s.Txn([]Cmp{{Key: "/a", Target: CmpVersion, IntVal: 99}},
		[]Op{{Type: OpPut, Key: "/x", Value: nil}}, nil); !errors.Is(err, ErrTxnFailed) {
		t.Fatalf("err = %v", err)
	}
	// Multi-op success branch commits atomically (consecutive revisions).
	before := s.Revision()
	res, err = s.Txn(
		[]Cmp{{Key: "/a", Target: CmpExists, IntVal: 1}},
		[]Op{
			{Type: OpPut, Key: "/m1", Value: []byte("1")},
			{Type: OpDelete, Key: "/fallback"},
		}, nil)
	if err != nil || !res.Succeeded {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if res.Revision != before+2 {
		t.Fatalf("revision = %d, want %d", res.Revision, before+2)
	}
}

func TestTxnGuardTargets(t *testing.T) {
	s := New()
	s.Put("/a", []byte("v1"))
	s.Put("/a", []byte("v2"))
	cases := []struct {
		cmp  Cmp
		want bool
	}{
		{Cmp{Key: "/a", Target: CmpModRevision, IntVal: 2}, true},
		{Cmp{Key: "/a", Target: CmpModRevision, IntVal: 1}, false},
		{Cmp{Key: "/a", Target: CmpCreateRevision, IntVal: 1}, true},
		{Cmp{Key: "/a", Target: CmpVersion, IntVal: 2}, true},
		{Cmp{Key: "/a", Target: CmpValue, BytVal: []byte("v2")}, true},
		{Cmp{Key: "/a", Target: CmpValue, BytVal: []byte("v1")}, false},
		{Cmp{Key: "/a", Target: CmpExists, IntVal: 1}, true},
		{Cmp{Key: "/zz", Target: CmpExists, IntVal: 0}, true},
		{Cmp{Key: "/zz", Target: CmpExists, IntVal: 1}, false},
		{Cmp{Key: "/zz", Target: CmpModRevision, IntVal: 0}, true},
	}
	for i, c := range cases {
		if got := s.Check(c.cmp); got != c.want {
			t.Errorf("case %d: Check(%+v) = %v, want %v", i, c.cmp, got, c.want)
		}
	}
}

func TestLeaseLifecycle(t *testing.T) {
	s := New()
	s.SetNow(1000)
	l := s.GrantLease(500)
	if l.ExpiresAt != 1500 {
		t.Fatalf("expiry = %d", l.ExpiresAt)
	}
	if _, err := s.PutWithLease("/member/a", []byte("alive"), l.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutWithLease("/x", nil, LeaseID(999)); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("unknown lease: %v", err)
	}

	// KeepAlive extends expiry.
	s.SetNow(1400)
	if _, err := s.KeepAlive(l.ID); err != nil {
		t.Fatal(err)
	}
	s.SetNow(1600)
	if deleted := s.ExpireDue(); len(deleted) != 0 {
		t.Fatalf("lease expired despite keepalive: %v", deleted)
	}

	// Expiry deletes attached keys and commits Delete events.
	s.SetNow(2000)
	deleted := s.ExpireDue()
	if len(deleted) != 1 || deleted[0] != "/member/a" {
		t.Fatalf("deleted = %v", deleted)
	}
	if _, _, ok := s.Get("/member/a"); ok {
		t.Fatal("lease key survived expiry")
	}
	h := s.History()
	last := h.At(h.Len() - 1)
	if last.Type != history.Delete || last.Key != "/member/a" {
		t.Fatalf("expiry event = %+v", last)
	}
	if _, ok := s.LeaseInfo(l.ID); ok {
		t.Fatal("expired lease still present")
	}
}

func TestLeaseDetachOnOverwriteAndDelete(t *testing.T) {
	s := New()
	l := s.GrantLease(1000)
	if _, err := s.PutWithLease("/k", []byte("1"), l.ID); err != nil {
		t.Fatal(err)
	}
	// Overwrite without lease detaches.
	s.Put("/k", []byte("2"))
	s.SetNow(2000)
	if deleted := s.ExpireDue(); len(deleted) != 0 {
		t.Fatalf("detached key deleted by expiry: %v", deleted)
	}
	kv, _, ok := s.Get("/k")
	if !ok || kv.Lease != 0 {
		t.Fatalf("kv = %+v", kv)
	}
}

func TestRevokeLease(t *testing.T) {
	s := New()
	l := s.GrantLease(1000)
	_, _ = s.PutWithLease("/a", nil, l.ID)
	_, _ = s.PutWithLease("/b", nil, l.ID)
	keys, err := s.RevokeLease(l.ID)
	if err != nil || len(keys) != 2 {
		t.Fatalf("keys=%v err=%v", keys, err)
	}
	if _, err := s.RevokeLease(l.ID); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("double revoke: %v", err)
	}
	if s.Len() != 0 {
		t.Fatal("lease keys survived revoke")
	}
}

// Property: the store's history, materialized, always equals the store's
// live state — H determines S (paper §3).
func TestPropertyHistoryMaterializesToState(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		keys := []string{"/a", "/b", "/c", "/d"}
		for i := 0; i < 120; i++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0, 1:
				s.Put(k, []byte(fmt.Sprintf("v%d", i)))
			case 2:
				_, _ = s.Delete(k)
			}
		}
		mat := history.Materialize(s.History())
		if mat.Len() != s.Len() {
			return false
		}
		for _, k := range mat.Keys() {
			kv, _, ok := s.Get(k)
			it, _ := mat.Get(k)
			if !ok || string(kv.Value) != string(it.Value) || kv.ModRevision != it.ModRevision {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a watcher that subscribes from revision 0 observes exactly the
// full history (H' == H when nothing is perturbed).
func TestPropertyUnperturbedWatchSeesFullHistory(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var seen []history.Event
		_, err := s.Watch("", 0, func(evs []history.Event) { seen = append(seen, evs...) })
		if err != nil {
			return false
		}
		keys := []string{"/a", "/b", "/c"}
		for i := 0; i < 60; i++ {
			k := keys[rng.Intn(len(keys))]
			if rng.Intn(4) == 0 {
				_, _ = s.Delete(k)
			} else {
				s.Put(k, []byte{byte(i)})
			}
		}
		full := s.History().Events()
		if len(seen) != len(full) {
			return false
		}
		for i := range full {
			if !full[i].Equal(seen[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: CAS linearizes concurrent writers — of N CAS attempts against
// the same observed revision, exactly one succeeds.
func TestPropertyCASMutualExclusion(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		s := New()
		rev := s.Put("/leader", []byte("none"))
		attempts := int(n%8) + 2
		succ := 0
		for i := 0; i < attempts; i++ {
			ok, _ := s.CompareAndSwap("/leader", rev, []byte{byte(i)})
			if ok {
				succ++
			}
		}
		return succ == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
