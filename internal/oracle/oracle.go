// Package oracle defines the safety and liveness invariants used as test
// oracles (paper §6.2 "what workloads and test oracles to use"). Oracles
// inspect ground truth — the store's (H, S) and component host state —
// never the cached views, so a violation is a real bug manifestation, not
// an artifact of staleness.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Violation is one detected invariant breach.
type Violation struct {
	Oracle string
	Time   sim.Time
	Detail string
	// Kind/Object identify the ground-truth object the invariant is about
	// (e.g. Pod/p1, PVC/cass-1-data); empty when the breach is not tied to
	// a single object. Explanations use them to anchor the causal chain.
	Kind   string `json:",omitempty"`
	Object string `json:",omitempty"`
	// Component names the acting component most directly implicated in the
	// breach, when the oracle can tell (e.g. "scheduler").
	Component string `json:",omitempty"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.Time, v.Oracle, v.Detail)
}

// Oracle checks one invariant. Check is called periodically with the
// current virtual time and returns a non-nil violation when the invariant
// is broken at this instant.
type Oracle interface {
	Name() string
	Check(now sim.Time) *Violation
}

// Func adapts a function to Oracle.
type Func struct {
	OracleName string
	CheckFunc  func(now sim.Time) *Violation
}

// Name implements Oracle.
func (f Func) Name() string { return f.OracleName }

// Check implements Oracle.
func (f Func) Check(now sim.Time) *Violation { return f.CheckFunc(now) }

// Stateful is implemented by oracles that accumulate state across Check
// calls (e.g. since-when trackers). The prefix-checkpoint layer uses it to
// transplant that state into a forked run; SnapshotState must return a
// value that is safe to hold across the original run's continued execution
// (i.e. a copy).
type Stateful interface {
	SnapshotState() any
	RestoreState(any)
}

// Runner evaluates a set of oracles periodically and collects the first
// violation of each.
type Runner struct {
	oracles []Oracle
	first   map[string]Violation
	order   []string

	// Periodic-tick binding (set by InstallPeriodic / BindPeriodic).
	w     *sim.World
	every sim.Duration
	// tickFn caches the tickFire method value: armTick runs every tick and
	// binding the method fresh each time allocates.
	tickFn func()
}

// NewRunner creates an empty runner.
func NewRunner() *Runner {
	return &Runner{first: make(map[string]Violation)}
}

// Add registers an oracle.
func (r *Runner) Add(o Oracle) { r.oracles = append(r.oracles, o) }

// Report records an externally detected violation (used by event-driven
// oracles hooked into the store). Only the first violation per oracle is
// kept.
func (r *Runner) Report(v Violation) {
	if _, ok := r.first[v.Oracle]; ok {
		return
	}
	r.first[v.Oracle] = v
	r.order = append(r.order, v.Oracle)
}

// CheckNow evaluates every oracle once.
func (r *Runner) CheckNow(now sim.Time) {
	for _, o := range r.oracles {
		if _, ok := r.first[o.Name()]; ok {
			continue
		}
		if v := o.Check(now); v != nil {
			r.Report(*v)
		}
	}
}

// InstallPeriodic schedules CheckNow every interval on the world's kernel,
// forever (the simulation's run bound ends it). The tick is tagged so
// prefix checkpoints can capture and re-arm it.
func (r *Runner) InstallPeriodic(w *sim.World, every sim.Duration) {
	r.BindPeriodic(w, every)
	r.armTick()
}

// BindPeriodic records the world and interval the periodic tick uses
// without scheduling anything (restore path: the pending tick event is
// re-installed by the orchestration via Rearm).
func (r *Runner) BindPeriodic(w *sim.World, every sim.Duration) {
	r.w = w
	r.every = every
}

func (r *Runner) armTick() {
	if r.tickFn == nil {
		r.tickFn = r.tickFire
	}
	r.w.Kernel().ScheduleTagged(r.every, sim.EventTag{Owner: "oracles", Kind: "tick"}, r.tickFn)
}

func (r *Runner) tickFire() {
	r.CheckNow(r.w.Now())
	r.armTick()
}

// Rearm returns the callback for a pending kernel event owned by the
// oracle runner. BindPeriodic must have been called first.
func (r *Runner) Rearm(tag sim.EventTag) (func(), error) {
	switch tag.Kind {
	case "tick":
		return r.tickFire, nil
	default:
		return nil, fmt.Errorf("oracle: unknown pending event kind %q", tag.Kind)
	}
}

// RunnerSnapshot captures the runner's recorded violations and the private
// state of every Stateful oracle (positionally, in registration order).
type RunnerSnapshot struct {
	First  map[string]Violation
	Order  []string
	States []any // one entry per registered oracle; nil when stateless
}

// Snapshot captures the runner. The caller restores it onto a runner whose
// oracles were re-registered in the same order (RestoreFrom).
func (r *Runner) Snapshot() *RunnerSnapshot {
	s := &RunnerSnapshot{
		First:  make(map[string]Violation, len(r.first)),
		Order:  append([]string(nil), r.order...),
		States: make([]any, len(r.oracles)),
	}
	for k, v := range r.first {
		s.First[k] = v
	}
	for i, o := range r.oracles {
		if st, ok := o.(Stateful); ok {
			s.States[i] = st.SnapshotState()
		}
	}
	return s
}

// RestoreFrom transplants a snapshot into this runner. The runner's oracle
// set must have been rebuilt (bound to the restored world's components) in
// the same registration order as at capture.
func (r *Runner) RestoreFrom(snap *RunnerSnapshot) error {
	if len(snap.States) != len(r.oracles) {
		return fmt.Errorf("oracle: restore with %d oracles, snapshot has %d", len(r.oracles), len(snap.States))
	}
	r.first = make(map[string]Violation, len(snap.First))
	for k, v := range snap.First {
		r.first[k] = v
	}
	r.order = append([]string(nil), snap.Order...)
	for i, o := range r.oracles {
		if snap.States[i] == nil {
			continue
		}
		st, ok := o.(Stateful)
		if !ok {
			return fmt.Errorf("oracle: snapshot state for non-stateful oracle %s", o.Name())
		}
		st.RestoreState(snap.States[i])
	}
	return nil
}

// Violations returns all recorded violations in detection order.
func (r *Runner) Violations() []Violation {
	out := make([]Violation, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.first[name])
	}
	return out
}

// Violated reports whether the named oracle was breached.
func (r *Runner) Violated(name string) bool {
	_, ok := r.first[name]
	return ok
}

// Names returns the names of all registered oracles plus any reported-only
// ones, sorted.
func (r *Runner) Names() []string {
	set := map[string]bool{}
	for _, o := range r.oracles {
		set[o.Name()] = true
	}
	for n := range r.first {
		set[n] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
