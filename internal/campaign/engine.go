package campaign

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/oracle"
)

// Config selects how an Engine executes campaigns.
type Config struct {
	// Workers is the number of pool goroutines executing plans
	// (0 = GOMAXPROCS). Each worker builds its own fresh cluster per
	// execution; the simulation itself stays goroutine-free.
	Workers int
	// Seeds are the world seeds to sweep; empty means {1}, the historical
	// default. Every seed records its own reference trace and generates
	// its own plans.
	Seeds []int64
	// MaxExecutions bounds plan executions per seed (0 = unlimited). The
	// reference run does not count against the bound but does count in
	// the reported Executions, matching core.RunCampaign.
	MaxExecutions int
	// Guided enables coverage-guided plan scheduling: executions are
	// instrumented with trace recorders, signatures feed back into a
	// scheduler that starves predicted-signature classes whose coverage
	// is saturated. Guided campaigns report engine-order executions (the
	// dispatch position of the detection), which at Workers>1 may vary
	// run to run; unguided campaigns are byte-identical to the serial
	// core.RunCampaign at any worker count.
	Guided bool
	// Collect retains per-plan outcomes (for the campaign.json artifact)
	// and forces instrumentation even when Guided is off.
	Collect bool
	// KeepGoing disables early cancellation: the campaign executes every
	// plan (up to MaxExecutions) even after the target bug is detected,
	// so the failure buckets see every violating execution. The reported
	// CampaignResult still uses first-detection accounting.
	KeepGoing bool
}

func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) seedList() []int64 {
	if len(c.Seeds) == 0 {
		return []int64{1}
	}
	return c.Seeds
}

func (c Config) instrumented() bool { return c.Guided || c.Collect }

// Engine executes campaigns per its Config. The zero-value-free
// constructor is New; an Engine is safe for sequential reuse across
// campaigns (each Run builds fresh pool state).
type Engine struct {
	cfg Config
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// SeedResult is one seed's campaign outcome.
type SeedResult struct {
	Seed     int64
	Campaign core.CampaignResult
}

// Result is the full outcome of one (target, strategy) campaign across
// all configured seeds.
type Result struct {
	Target   string
	Strategy string
	// Campaign is the first seed's result. For unguided engines it is
	// byte-identical to core.RunCampaign(t, s, maxExecutions) — the
	// cross-check tests rely on this.
	Campaign core.CampaignResult
	// Detected reports whether any seed detected the target bug.
	Detected bool
	// Seeds holds every seed's campaign result, in Config.Seeds order.
	Seeds []SeedResult
	// Stats carries the progress counters (raw executions, wall clock,
	// executions/sec, coverage classes, detections).
	Stats Stats
	// Buckets are the violating executions deduplicated by signature
	// (instrumented runs only).
	Buckets []FailureBucket
	// Outcomes are the per-plan execution records (Config.Collect only).
	Outcomes []PlanOutcome
}

// slot is one dispatched execution's record, indexed by dispatch order.
type slot struct {
	ran       bool
	planIndex int // original index in the strategy's plan order
	plan      core.Plan
	exec      core.Execution
	sig       Signature
	wall      time.Duration
}

// Run executes one campaign: for every seed, a reference run, plan
// generation, and a pooled execution of the plans.
func (e *Engine) Run(t core.Target, s core.Strategy) Result {
	start := time.Now()
	res := Result{Target: t.Name, Strategy: s.Name()}
	agg := newAggregator(e.cfg)
	for _, seed := range e.cfg.seedList() {
		sr := e.runSeed(t, s, seed, agg)
		res.Seeds = append(res.Seeds, sr)
		if sr.Campaign.Detected {
			res.Detected = true
		}
	}
	res.Campaign = res.Seeds[0].Campaign
	res.Stats = agg.stats(e.cfg, time.Since(start))
	res.Buckets = agg.bucketList()
	res.Outcomes = agg.outcomes
	return res
}

// Matrix runs every (target, strategy) pair — the parallel counterpart of
// core.Matrix, in the same row-major order.
func (e *Engine) Matrix(targets []core.Target, strategies []core.Strategy) []Result {
	out := make([]Result, 0, len(targets)*len(strategies))
	for _, t := range targets {
		for _, s := range strategies {
			out = append(out, e.Run(t, s))
		}
	}
	return out
}

func (e *Engine) runSeed(t core.Target, s core.Strategy, seed int64, agg *aggregator) SeedResult {
	cr := core.CampaignResult{Target: t.Name, Strategy: s.Name()}

	// Reference run: the planning substrate, and a real execution.
	refStart := time.Now()
	ref, refViolations := core.ReferenceSeed(t, seed)
	refSlot := slot{
		ran:       true,
		planIndex: -1,
		plan:      core.NopPlan{},
		exec: core.Execution{
			Plan:       core.NopPlan{},
			Seed:       seed,
			Violations: refViolations,
			Detected:   violates(refViolations, t.Bug),
		},
		wall: time.Since(refStart),
	}
	if e.cfg.instrumented() {
		refSlot.sig = signatureOf(ref, refViolations)
	}
	agg.add(seed, refSlot, e.cfg.instrumented())

	if refSlot.exec.Detected {
		// The bug manifests without perturbation; mirror the serial path.
		cr.PlansTotal = 1
		cr.Executions = 1
		cr.Detected = true
		cr.DetectingPlan = core.NopPlan{}.Describe()
		if fv := firstViolation(refViolations, t.Bug); fv != nil {
			cr.FirstViolation = fv
		}
		return SeedResult{Seed: seed, Campaign: cr}
	}

	plans := s.Plans(t, ref)
	cr.PlansTotal = len(plans)
	cr.Executions = 1 // the reference run

	var slots []slot
	var detect int // dispatch position of the first detection, -1 if none
	if e.cfg.Guided {
		slots, detect = e.runGuided(t, plans, seed)
	} else {
		slots, detect = e.runOrdered(t, plans, seed)
	}
	for _, sl := range slots {
		if sl.ran {
			agg.add(seed, sl, e.cfg.instrumented())
		}
	}

	if detect >= 0 {
		cr.Detected = true
		cr.Executions = 1 + detect + 1
		cr.DetectingPlan = slots[detect].plan.Describe()
		if fv := firstViolation(slots[detect].exec.Violations, t.Bug); fv != nil {
			cr.FirstViolation = fv
		}
	} else {
		ran := 0
		for _, sl := range slots {
			if sl.ran {
				ran++
			}
		}
		cr.Executions = 1 + ran
	}
	return SeedResult{Seed: seed, Campaign: cr}
}

// runOrdered executes plans in strategy order across the worker pool.
// Indices are dispatched monotonically and results land in per-index
// slots, so the outcome — detect = the lowest detecting index, with every
// lower index executed and undetected — is identical to the serial
// campaign at any worker count. Once a detection is known, indices beyond
// it are not started (early cancel) unless KeepGoing is set.
func (e *Engine) runOrdered(t core.Target, plans []core.Plan, seed int64) ([]slot, int) {
	limit := len(plans)
	if m := e.cfg.MaxExecutions; m > 0 && m < limit {
		limit = m
	}
	slots := make([]slot, limit)
	if limit == 0 {
		return slots, -1
	}
	instrument := e.cfg.instrumented()

	var next int64 = -1
	firstDetect := int64(limit) // min-reduced detecting index
	nw := e.cfg.workerCount()
	if nw > limit {
		nw = limit
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= limit {
					return
				}
				if !e.cfg.KeepGoing && int64(i) > atomic.LoadInt64(&firstDetect) {
					// A plan ordered before this one already detected;
					// the serial campaign would never have run it.
					return
				}
				start := time.Now()
				var exec core.Execution
				var sig Signature
				if instrument {
					exec, sig = runInstrumented(t, plans[i], seed)
				} else {
					exec = core.RunPlanSeed(t, plans[i], seed)
				}
				slots[i] = slot{
					ran: true, planIndex: i, plan: plans[i],
					exec: exec, sig: sig, wall: time.Since(start),
				}
				if exec.Detected {
					for {
						cur := atomic.LoadInt64(&firstDetect)
						if int64(i) >= cur || atomic.CompareAndSwapInt64(&firstDetect, cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if fd := int(firstDetect); fd < limit {
		return slots, fd
	}
	return slots, -1
}

// runGuided executes plans in coverage-first order: the scheduler hands
// out the pending plan whose predicted signature class promises the most
// novel coverage, and completed executions feed their actual signatures
// back. Slots are indexed by dispatch sequence; detect is the lowest
// dispatch sequence that detected.
func (e *Engine) runGuided(t core.Target, plans []core.Plan, seed int64) ([]slot, int) {
	limit := len(plans)
	if m := e.cfg.MaxExecutions; m > 0 && m < limit {
		limit = m
	}
	slots := make([]slot, limit)
	if limit == 0 {
		return slots, -1
	}
	sched := newCoverageScheduler(plans, limit)

	firstDetect := int64(limit) // min-reduced detecting dispatch sequence
	var stop int32
	nw := e.cfg.workerCount()
	if nw > limit {
		nw = limit
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if !e.cfg.KeepGoing && atomic.LoadInt32(&stop) == 1 {
					return
				}
				item, seq, ok := sched.next()
				if !ok {
					return
				}
				start := time.Now()
				exec, sig := runInstrumented(t, item.plan, seed)
				sched.record(item.class, sig)
				slots[seq] = slot{
					ran: true, planIndex: item.index, plan: item.plan,
					exec: exec, sig: sig, wall: time.Since(start),
				}
				if exec.Detected {
					atomic.StoreInt32(&stop, 1)
					for {
						cur := atomic.LoadInt64(&firstDetect)
						if int64(seq) >= cur || atomic.CompareAndSwapInt64(&firstDetect, cur, int64(seq)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if fd := int(firstDetect); fd < limit {
		return slots, fd
	}
	return slots, -1
}

// violates reports whether the named oracle appears in the violation list.
func violates(violations []oracle.Violation, bug string) bool {
	for _, v := range violations {
		if v.Oracle == bug {
			return true
		}
	}
	return false
}

// firstViolation returns a copy of the first violation of the named
// oracle, or nil.
func firstViolation(violations []oracle.Violation, bug string) *oracle.Violation {
	for _, v := range violations {
		if v.Oracle == bug {
			fv := v
			return &fv
		}
	}
	return nil
}
