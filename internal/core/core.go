package core
