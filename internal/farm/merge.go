package farm

import (
	"sort"

	"repro/internal/campaign"
)

// MergeCell rebuilds one cell's sweep-level campaign.Result from its
// per-seed shards, in seed-sweep order. The merge must reproduce — byte
// for byte, after canonicalization — what a single engine computes when
// it runs the whole sweep itself, so every rule below mirrors a
// specific aggregator behavior:
//
//   - Seeds / Outcomes / Failures / Learn concatenate: the single-engine
//     aggregation order is seed-sweep-major, and each shard's records
//     are exactly its seed's slice of that order.
//   - Campaign / DetectedSeed go through campaign.PrimaryCampaign, the
//     same sweep-level aggregation the engine applies to its own
//     per-seed results.
//   - Buckets merge by signature with Count summed and everything else
//     taken from the lowest-seed shard containing the signature: the
//     aggregator fixes Oracles and Detected at bucket creation (first
//     occurrence in aggregation order = lowest seed), its example
//     ordering (seedIdx, planIndex) can never prefer a later seed over
//     an earlier one, and the explanation pass minimizes each bucket
//     under its example's seed — which is that same lowest-seed
//     example. Bucket order is sorted signature hex, the aggregator's
//     bucketOrder.
//   - Coverage stats recompute from the merged outcomes: the aggregator
//     inserts into its class/signature sets exactly once per collected
//     outcome (classes for every outcome, signatures for healthy
//     instrumented ones — the outcomes with a non-empty signature), so
//     distinct-over-outcomes is the exact cross-seed count, not an
//     approximation. Everything else in Stats is a plain sum, except
//     the explanation counters, which are recomputed from the merged
//     bucket set because shards may redundantly explain the same
//     signature under higher seeds — work the single engine never does
//     and the merge must not count.
//
// A single-part cell (the learning-coupled case, where the whole sweep
// ran as one task) passes through untouched.
func MergeCell(parts []campaign.Result) campaign.Result {
	if len(parts) == 1 {
		return parts[0]
	}
	res := campaign.Result{Target: parts[0].Target, Strategy: parts[0].Strategy}
	for _, p := range parts {
		res.Seeds = append(res.Seeds, p.Seeds...)
		res.Outcomes = append(res.Outcomes, p.Outcomes...)
		res.Failures = append(res.Failures, p.Failures...)
		res.Learn = append(res.Learn, p.Learn...)
		if p.Detected {
			res.Detected = true
		}
	}
	res.Campaign, res.DetectedSeed = campaign.PrimaryCampaign(res.Seeds)
	res.Buckets = mergeBuckets(parts)
	res.Stats = mergeStats(parts, res)
	return res
}

func mergeBuckets(parts []campaign.Result) []campaign.FailureBucket {
	bySig := map[string]*campaign.FailureBucket{}
	for _, p := range parts {
		for _, b := range p.Buckets {
			if base, ok := bySig[b.Signature]; ok {
				base.Count += b.Count
				continue
			}
			nb := b
			bySig[b.Signature] = &nb
		}
	}
	if len(bySig) == 0 {
		return nil
	}
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	out := make([]campaign.FailureBucket, 0, len(sigs))
	for _, sig := range sigs {
		out = append(out, *bySig[sig])
	}
	return out
}

func mergeStats(parts []campaign.Result, merged campaign.Result) campaign.Stats {
	st := campaign.Stats{Workers: parts[0].Stats.Workers}
	for _, p := range parts {
		st.Seeds += p.Stats.Seeds
		st.RawExecutions += p.Stats.RawExecutions
		st.Detections += p.Stats.Detections
		st.ViolatingExecutions += p.Stats.ViolatingExecutions
		st.FailedExecutions += p.Stats.FailedExecutions
		st.HungExecutions += p.Stats.HungExecutions
		st.PlansPruned += p.Stats.PlansPruned
		st.PlansDeduped += p.Stats.PlansDeduped
		st.PrunedExecuted += p.Stats.PrunedExecuted
		st.PruningUnsoundDetections += p.Stats.PruningUnsoundDetections
		st.CorpusRegressionPlans += p.Stats.CorpusRegressionPlans
		st.CorpusSkippedPlans += p.Stats.CorpusSkippedPlans
		st.CorpusInvalidatedSeeds += p.Stats.CorpusInvalidatedSeeds
		st.WallNanos += p.Stats.WallNanos
	}
	// Fleet counters sum across parts (a quarantined shard carries its
	// own); nil stays nil so healthy merges keep their historical bytes.
	var fleet campaign.FleetStats
	for _, p := range parts {
		if p.Stats.Fleet != nil {
			fleet.Add(*p.Stats.Fleet)
		}
	}
	if !fleet.Zero() {
		st.Fleet = &fleet
	}
	classes := map[string]bool{}
	sigs := map[string]bool{}
	for _, out := range merged.Outcomes {
		classes[out.Class] = true
		if out.Signature != "" {
			sigs[out.Signature] = true
		}
	}
	st.CoverageClasses = len(classes)
	st.NovelSignatures = len(sigs)
	for _, b := range merged.Buckets {
		if b.Explanation != nil {
			st.MinimizeExecutions += b.MinimizeExecutions
			st.ExplainedBuckets++
		}
	}
	if st.WallNanos > 0 {
		st.ExecutionsPerSec = float64(st.RawExecutions) / (float64(st.WallNanos) / 1e9)
	}
	return st
}
