package campaign

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func schedFixture() []planRef {
	// Three predicted classes: staleness on api-1, staleness on api-2,
	// crash of the scheduler — with several timing variants each.
	var plans []core.Plan
	for i := 0; i < 4; i++ {
		at := sim.Time(int64(i+1) * int64(sim.Second))
		plans = append(plans,
			core.StalenessPlan{Victim: "api-1", From: at, Until: at.Add(sim.Second)},
			core.StalenessPlan{Victim: "api-2", From: at, Until: at.Add(sim.Second)},
			core.CrashPlan{Component: "scheduler", At: at},
		)
	}
	refs := make([]planRef, len(plans))
	for i, p := range plans {
		refs[i] = planRef{plan: p, index: i}
	}
	return refs
}

// TestSchedulerExploresClassesFirst: before any class is revisited, every
// class must have been dispatched once.
func TestSchedulerExploresClassesFirst(t *testing.T) {
	s := newCoverageScheduler(schedFixture(), 0, nil)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		item, seq, ok := s.next()
		if !ok || seq != i {
			t.Fatalf("dispatch %d failed (ok=%v seq=%d)", i, ok, seq)
		}
		if seen[item.class] {
			t.Fatalf("class %q revisited before all classes were tried", item.class)
		}
		seen[item.class] = true
		s.record(item.class, Signature(seq)) // all novel
	}
	if len(seen) != 3 {
		t.Fatalf("expected 3 distinct classes in first wave, got %d", len(seen))
	}
}

// TestSchedulerStarvesSaturatedClass: a class that keeps producing the
// same signature must be deprioritized relative to one still yielding
// novel coverage.
func TestSchedulerStarvesSaturatedClass(t *testing.T) {
	s := newCoverageScheduler(schedFixture(), 0, nil)
	novel := Signature(1000)
	// First wave: one execution per class. api-1 plans hash to the same
	// stale signature forever; crash plans keep finding new coverage.
	classResults := map[string]func() Signature{}
	classResults["stale/api-1"] = func() Signature { return Signature(1) }
	classResults["stale/api-2"] = func() Signature { return Signature(2) }
	classResults["crash/scheduler"] = func() Signature { novel++; return novel }

	dispatches := map[string]int{}
	for {
		item, _, ok := s.next()
		if !ok {
			break
		}
		dispatches[item.class]++
		s.record(item.class, classResults[item.class]())
	}
	if dispatches["crash/scheduler"] != 4 {
		t.Fatalf("crash class should drain fully, dispatched %d", dispatches["crash/scheduler"])
	}
	// Once every class has been tried twice, the saturated staleness
	// classes (same signature every time) must be starved: the remaining
	// crash plans — still yielding novel signatures — run back to back.
	// Verify with a fresh scheduler, replaying the same feedback.
	s2 := newCoverageScheduler(schedFixture(), 0, nil)
	var order []string
	for i := 0; i < 8; i++ {
		item, _, ok := s2.next()
		if !ok {
			break
		}
		order = append(order, item.class)
		s2.record(item.class, classResults[item.class]())
	}
	if len(order) != 8 {
		t.Fatalf("expected 8 dispatches, got %d", len(order))
	}
	if order[6] != "crash/scheduler" || order[7] != "crash/scheduler" {
		t.Fatalf("saturated classes were not starved; dispatch order: %v", order)
	}
}

// TestSchedulerHonorsLimit: MaxExecutions caps dispatches.
func TestSchedulerHonorsLimit(t *testing.T) {
	s := newCoverageScheduler(schedFixture(), 5, nil)
	n := 0
	for {
		_, _, ok := s.next()
		if !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("limit 5, dispatched %d", n)
	}
	classes, sigs := s.snapshot()
	if classes != 3 || sigs != 0 {
		t.Fatalf("snapshot (%d classes, %d sigs), want (3, 0)", classes, sigs)
	}
}

// TestClassOfAbstractsTiming: plans differing only in timing share a
// class; plans with different victims or families do not.
func TestClassOfAbstractsTiming(t *testing.T) {
	a := core.StalenessPlan{Victim: "api-1", From: 1, Until: 2}
	b := core.StalenessPlan{Victim: "api-1", From: 500, Until: 900}
	c := core.StalenessPlan{Victim: "api-2", From: 1, Until: 2}
	if classOf(a) != classOf(b) {
		t.Fatalf("timing variants split classes: %q vs %q", classOf(a), classOf(b))
	}
	if classOf(a) == classOf(c) {
		t.Fatal("different victims collided")
	}
	tt := core.TimeTravelPlan{Component: "kubelet-k1", StaleAPI: "api-1", FreezeAt: 5, CrashAt: 9}
	if classOf(tt) == classOf(a) {
		t.Fatal("families collided")
	}
	seq := core.SequencePlan{Name: "x", Plans: []core.Plan{a, tt}}
	seq2 := core.SequencePlan{Name: "y", Plans: []core.Plan{tt, b}}
	if classOf(seq) != classOf(seq2) {
		t.Fatalf("sequence classes should be order- and timing-insensitive: %q vs %q",
			classOf(seq), classOf(seq2))
	}
}
