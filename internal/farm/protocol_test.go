package farm

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestFrameScanner(t *testing.T) {
	input := "\n" + // blank: skipped
		`{"type":"ready","proto":"phfarm/1"}` + "\n" +
		"   \n" + // whitespace-only: skipped
		"this is not json\n" +
		`{"task_id":3}` + "\n" + // valid JSON, no type
		`{"type":"result","task` // torn tail, no newline
	fs := newFrameScanner(strings.NewReader(input), "test-peer")

	msg, raw, err := fs.next()
	if err != nil || msg.Type != msgReady || msg.Proto != ProtocolVersion {
		t.Fatalf("first frame: msg=%+v raw=%s err=%v", msg, raw, err)
	}

	_, _, err = fs.next()
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("garbage line: err=%v, want *ProtocolError", err)
	}
	if pe.Peer != "test-peer" || !strings.Contains(pe.Line, "not json") {
		t.Errorf("protocol error evidence: peer=%q line=%q", pe.Peer, pe.Line)
	}
	if !strings.Contains(pe.Error(), "test-peer") {
		t.Errorf("Error() omits peer: %s", pe.Error())
	}

	_, _, err = fs.next()
	if !errors.As(err, &pe) || !strings.Contains(pe.Err.Error(), "no type") {
		t.Errorf("typeless frame: err=%v, want no-type ProtocolError", err)
	}

	// The torn tail is still a line to bufio.Scanner (EOF flushes it), so
	// it surfaces as a decode ProtocolError — exactly what a coordinator
	// must see when a worker dies mid-write.
	_, _, err = fs.next()
	if !errors.As(err, &pe) {
		t.Errorf("torn tail: err=%v, want *ProtocolError", err)
	}

	if _, _, err = fs.next(); err != io.EOF {
		t.Errorf("exhausted scanner: err=%v, want io.EOF", err)
	}
}

func TestSanitizeEvidence(t *testing.T) {
	long := strings.Repeat("x", evidenceLimit+50)
	got := sanitizeEvidence(long)
	if len(got) > evidenceLimit+20 || !strings.HasSuffix(got, `..."`) {
		t.Errorf("oversized evidence not truncated: len=%d tail=%q", len(got), got[len(got)-8:])
	}
	if got := sanitizeEvidence("a\x00b\nc"); got != `"a\x00b\nc"` {
		t.Errorf("control chars not escaped: %s", got)
	}
}

// TestWorkerLoopProtocolError: garbage on the worker's stdin must come
// back as a typed *ProtocolError, not a panic or a silent skip.
func TestWorkerLoopProtocolError(t *testing.T) {
	for _, input := range []string{
		"certainly not a frame\n",
		`{"type":"no-such-message"}` + "\n",
	} {
		var out bytes.Buffer
		err := WorkerLoop(strings.NewReader(input), &out)
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Errorf("WorkerLoop(%q) = %v, want *ProtocolError", input, err)
		}
		// The handshake must still have been sent before the bad frame.
		if !strings.Contains(out.String(), ProtocolVersion) {
			t.Errorf("worker never announced %s:\n%s", ProtocolVersion, out.String())
		}
	}
}

// TestWorkerLoopCleanEOF: a coordinator hanging up without a shutdown
// frame is a clean exit for the worker, not an error.
func TestWorkerLoopCleanEOF(t *testing.T) {
	var out bytes.Buffer
	if err := WorkerLoop(strings.NewReader(""), &out); err != nil {
		t.Errorf("WorkerLoop on EOF = %v, want nil", err)
	}
	if err := WorkerLoop(strings.NewReader(`{"type":"shutdown"}`+"\n"), &out); err != nil {
		t.Errorf("WorkerLoop on shutdown = %v, want nil", err)
	}
}

// TestSupervisedHandshakeRejection: a worker announcing the wrong
// protocol version is put down at the handshake; with respawns
// exhausted the fleet reports handshake deaths and an exhaustion error
// instead of feeding tasks to a peer that half-speaks the protocol.
func TestSupervisedHandshakeRejection(t *testing.T) {
	tasks := Plan([]string{"cass-op-400"}, []string{"partial-history"},
		TaskSpec{Seeds: []int64{1}, MaxExecutions: 10})
	sup := &Supervisor{
		Factory: func(slot, spawn int) Transport {
			return &scriptedTransport{lines: []string{`{"type":"ready","proto":"phfarm/0"}`}}
		},
		Workers:     1,
		MaxRespawns: 1,
		sleep:       func(time.Duration) {},
	}
	_, report, interrupted, err := RunSupervised(context.Background(), sup, tasks, nil)
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("err=%v, want fleet exhaustion", err)
	}
	if interrupted {
		t.Error("handshake failure misreported as interruption")
	}
	if len(report.Deaths) == 0 {
		t.Fatal("no deaths recorded")
	}
	for _, d := range report.Deaths {
		if d.Cause != DeathHandshake {
			t.Errorf("death cause %q, want %q", d.Cause, DeathHandshake)
		}
		if !strings.Contains(d.Detail, "phfarm/0") {
			t.Errorf("death detail %q does not name the bad version", d.Detail)
		}
	}
}

// TestLegacyCoordinatorHandshakeRejection pins the same guard on the
// unsupervised path: the legacy coordinator aborts rather than talking
// to a version-skewed worker.
func TestLegacyCoordinatorHandshakeRejection(t *testing.T) {
	tasks := Plan([]string{"cass-op-400"}, []string{"partial-history"},
		TaskSpec{Seeds: []int64{1}, MaxExecutions: 10})
	c := &Coordinator{}
	transports := []Transport{
		&scriptedTransport{lines: []string{`{"type":"ready","proto":"phfarm/99"}`}},
	}
	_, _, err := c.Run(context.Background(), transports, tasks)
	if err == nil {
		t.Fatal("legacy coordinator accepted a version-skewed worker")
	}
}
