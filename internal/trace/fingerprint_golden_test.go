package trace_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Golden state hashes per (target, seed). These pin the explorer's
// visited-set key function: an accidental change to StateHash silently
// invalidates every committed certificate, so it must show up here as a
// loud diff instead.
var stateHashGoldens = []struct {
	target string
	seed   int64
	hash   uint64
}{
	{"k8s-59848", 1, 0x4f8a9e51fafe16f8},
	{"k8s-59848", 2, 0x33f5af1eb534d388},
	{"k8s-56261", 1, 0x4bcd1102daf978fa},
	{"k8s-56261", 2, 0x172b0a7059d3220e},
	{"cass-op-398", 1, 0x8cc03df496ab5577},
	{"cass-op-398", 2, 0xcc227b50e56b7717},
	{"cass-op-400", 1, 0x7686d46c72911981},
	{"cass-op-400", 2, 0xcd655fcf05bfba1d},
	{"cass-op-402", 1, 0x1ebd94b510c512f9},
	{"cass-op-402", 2, 0x473c848939081019},
}

func targetByName(t *testing.T, name string) core.Target {
	t.Helper()
	for _, tgt := range workload.AllTargets() {
		if tgt.Name == name {
			return tgt
		}
	}
	t.Fatalf("unknown target %s", name)
	return core.Target{}
}

func TestStateHashGolden(t *testing.T) {
	for _, g := range stateHashGoldens {
		ref, _ := core.ReferenceSeed(targetByName(t, g.target), g.seed)
		if got := ref.StateHash(); got != g.hash {
			t.Errorf("%s seed %d: StateHash = %#016x, want %#016x (update goldens ONLY for a deliberate hash change — committed certificates key on this)",
				g.target, g.seed, got, g.hash)
		}
	}
}

// Reordering two DEPENDENT deliveries — consecutive deliveries observed
// by the same component with different decision-relevant content — must
// change the state hash: the component's observation order is exactly
// what the explorer's visited set distinguishes.
func TestStateHashDependentReorderChangesHash(t *testing.T) {
	for _, tgt := range workload.AllTargets() {
		ref, _ := core.ReferenceSeed(tgt, 1)
		i, j := findDependentPair(ref)
		if i < 0 {
			t.Fatalf("%s: no dependent delivery pair in reference trace", tgt.Name)
		}
		base := ref.StateHash()
		ref.Deliveries[i], ref.Deliveries[j] = ref.Deliveries[j], ref.Deliveries[i]
		if ref.StateHash() == base {
			t.Errorf("%s: swapping dependent deliveries %d,%d did not change StateHash", tgt.Name, i, j)
		}
	}
}

// Reordering two INDEPENDENT deliveries — addressed to different
// components — must NOT change the hash: that commutation is precisely
// the equivalence the partial-order reduction collapses.
func TestStateHashIndependentReorderPreservesHash(t *testing.T) {
	ref, _ := core.ReferenceSeed(targetByName(t, "k8s-56261"), 1)
	i, j := -1, -1
	for k := 0; k+1 < len(ref.Deliveries); k++ {
		if ref.Deliveries[k].To != ref.Deliveries[k+1].To {
			i, j = k, k+1
			break
		}
	}
	if i < 0 {
		t.Fatal("no independent adjacent pair found")
	}
	base := ref.StateHash()
	ref.Deliveries[i], ref.Deliveries[j] = ref.Deliveries[j], ref.Deliveries[i]
	if ref.StateHash() != base {
		t.Error("swapping deliveries to different components changed StateHash")
	}
}

// findDependentPair returns consecutive (in the receiver's observation
// order) delivery indices to one component whose hashed content differs.
func findDependentPair(ref *trace.Trace) (int, int) {
	last := map[sim.NodeID]int{}
	for k, d := range ref.Deliveries {
		if p, ok := last[d.To]; ok {
			a, b := ref.Deliveries[p], d
			if a.Kind != b.Kind || a.Name != b.Name || a.EventType != b.EventType || a.Terminating != b.Terminating {
				return p, k
			}
		}
		last[d.To] = k
	}
	return -1, -1
}
