package baselines_test

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRandomDeterministicPerSeed(t *testing.T) {
	target := workload.Target56261()
	ref, _ := core.Reference(target)
	a := baselines.Random{Seed: 3, N: 30}.Plans(target, ref)
	b := baselines.Random{Seed: 3, N: 30}.Plans(target, ref)
	if len(a) != len(b) {
		t.Fatalf("plan counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("plan %d differs: %s vs %s", i, a[i].ID(), b[i].ID())
		}
	}
	c := baselines.Random{Seed: 4, N: 30}.Plans(target, ref)
	same := true
	for i := range a {
		if i < len(c) && a[i].ID() != c[i].ID() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical random plans")
	}
}

func TestCrashTunerTargetsMembershipObservers(t *testing.T) {
	target := workload.Target56261()
	ref, _ := core.Reference(target)
	plans := baselines.CrashTuner{}.Plans(target, ref)
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	restartable := map[sim.NodeID]bool{}
	for _, id := range target.Topology.Restartable {
		restartable[id] = true
	}
	for _, p := range plans {
		cp, ok := p.(core.CrashPlan)
		if !ok {
			t.Fatalf("unexpected plan type %T", p)
		}
		if !restartable[cp.Component] {
			t.Fatalf("crash plan targets non-restartable %s", cp.Component)
		}
	}
}

func TestCoFIPlansAreWindowedPartitions(t *testing.T) {
	target := workload.TargetCass398()
	ref, _ := core.Reference(target)
	plans := baselines.CoFI{Window: sim.Second}.Plans(target, ref)
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	for _, p := range plans {
		switch pp := p.(type) {
		case core.PartitionPlan:
			if pp.Until <= pp.From {
				t.Fatalf("unbounded partition: %+v", pp)
			}
		case core.StalenessPlan:
			if pp.Until <= pp.From {
				t.Fatalf("unbounded freeze: %+v", pp)
			}
		default:
			t.Fatalf("unexpected plan type %T", p)
		}
	}
}

func TestBaselinePlansExecuteWithoutDetectingCleanTargets(t *testing.T) {
	// Running a handful of baseline plans must not crash the harness; the
	// detection outcome is exercised by the E5 benchmark.
	target := workload.Target59848()
	ref, _ := core.Reference(target)
	for _, s := range []core.Strategy{
		baselines.Random{Seed: 1, N: 3},
		baselines.CrashTuner{},
		baselines.CoFI{},
	} {
		plans := s.Plans(target, ref)
		limit := 3
		if len(plans) < limit {
			limit = len(plans)
		}
		for _, p := range plans[:limit] {
			exec := core.RunPlan(target, p)
			_ = exec
		}
	}
}
