package trace

import (
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/store"
)

func push(r *Recorder, from, to sim.NodeID, seq uint64, typ apiserver.EventType, kind cluster.Kind, name string, rev int64, terminating bool) {
	obj := &cluster.Object{Meta: cluster.Meta{Kind: kind, Name: name, ResourceVersion: rev}}
	if terminating {
		obj.Meta.DeletionTimestamp = 1
	}
	r.OnDeliver(&sim.Message{
		Seq:     seq,
		From:    from,
		To:      to,
		Kind:    apiserver.KindWatchPush,
		Payload: &apiserver.WatchPushMsg{Events: []apiserver.WatchEvent{{Type: typ, Object: obj, Revision: rev}}},
	})
}

func TestRecorderDeliveriesAndOccurrences(t *testing.T) {
	r := NewRecorder()
	push(r, "api-1", "scheduler", 1, apiserver.Added, cluster.KindPod, "p1", 5, false)
	push(r, "api-1", "scheduler", 2, apiserver.Modified, cluster.KindPod, "p1", 6, false)
	push(r, "api-1", "scheduler", 3, apiserver.Modified, cluster.KindPod, "p1", 7, true)
	push(r, "api-1", "kubelet-k1", 4, apiserver.Modified, cluster.KindPod, "p1", 7, true)

	ds := r.T.DeliveriesTo("scheduler")
	if len(ds) != 3 {
		t.Fatalf("deliveries = %d", len(ds))
	}
	// Occurrence counts are per (to, kind, name, type).
	if ds[1].Occurrence != 1 || ds[2].Occurrence != 2 {
		t.Fatalf("occurrences = %d %d", ds[1].Occurrence, ds[2].Occurrence)
	}
	if !ds[2].Terminating || ds[1].Terminating {
		t.Fatalf("terminating flags = %v %v", ds[1].Terminating, ds[2].Terminating)
	}
	// A different victim has its own occurrence counter.
	kd := r.T.DeliveriesTo("kubelet-k1")
	if len(kd) != 1 || kd[0].Occurrence != 1 {
		t.Fatalf("kubelet deliveries = %+v", kd)
	}
	// Deliveries imply subscriptions.
	if !r.T.Subscriptions["scheduler"][cluster.KindPod] {
		t.Fatal("subscription not derived from delivery")
	}
	comps := r.T.Components()
	if len(comps) != 2 || comps[0] != "api-1" && comps[0] != "kubelet-k1" {
		t.Fatalf("components = %v", comps)
	}
}

func TestRecorderWritesAndActedOn(t *testing.T) {
	r := NewRecorder()
	r.OnSend(&sim.Message{
		From: "operator", To: "api-1", SentAt: 10,
		Payload: &sim.RPCRequest{Method: apiserver.MethodUpdate, Body: &apiserver.UpdateRequest{
			Object: cluster.NewPod("cass-1", "u", cluster.PodSpec{}),
		}},
	})
	r.OnSend(&sim.Message{
		From: "operator", To: "api-1", SentAt: 11,
		Payload: &sim.RPCRequest{Method: apiserver.MethodDelete, Body: &apiserver.DeleteRequest{
			Kind: cluster.KindPVC, Name: "cass-1-data",
		}},
	})
	r.OnSend(&sim.Message{
		From: "admin", To: "api-1", SentAt: 12,
		Payload: &sim.RPCRequest{Method: apiserver.MethodCreate, Body: &apiserver.CreateRequest{
			Object: cluster.NewCassandra("cass", "u", cluster.CassandraSpec{Replicas: 2}),
		}},
	})
	if len(r.T.Writes) != 3 {
		t.Fatalf("writes = %d", len(r.T.Writes))
	}
	if !r.T.ActedOn("operator", cluster.KindPod, "cass-1") {
		t.Fatal("ActedOn(pod) = false")
	}
	if !r.T.ActedOn("operator", cluster.KindPVC, "cass-1-data") {
		t.Fatal("ActedOn(pvc) = false")
	}
	if r.T.ActedOn("operator", cluster.KindCassandra, "cass") {
		t.Fatal("operator credited with the admin's write")
	}
}

func TestRecorderSubscriptionsFromWatchRequests(t *testing.T) {
	r := NewRecorder()
	r.OnSend(&sim.Message{
		From: "scheduler", To: "api-1",
		Payload: &sim.RPCRequest{Method: apiserver.MethodWatch, Body: &apiserver.WatchRequest{
			Kind: cluster.KindNode, SubID: 1,
		}},
	})
	if !r.T.Subscriptions["scheduler"][cluster.KindNode] {
		t.Fatal("watch request not recorded as subscription")
	}
}

func TestRecorderCommitHook(t *testing.T) {
	w := sim.NewWorld(sim.DefaultWorldConfig())
	st := store.New()
	r := NewRecorder()
	r.Attach(w.Network(), st)
	st.Put("/a", []byte("1"))
	st.Put("/b", []byte("2"))
	if len(r.T.Commits) != 2 {
		t.Fatalf("commits = %d", len(r.T.Commits))
	}
	if r.T.Commits[0].Type != history.Put || r.T.Commits[0].Key != "/a" {
		t.Fatalf("commit 0 = %+v", r.T.Commits[0])
	}
}

func TestCommitTimesSortedDistinct(t *testing.T) {
	tr := New()
	tr.Commits = []history.Event{
		{Revision: 1, Time: 30}, {Revision: 2, Time: 10}, {Revision: 3, Time: 30},
	}
	times := tr.CommitTimes()
	if len(times) != 2 || times[0] != 10 || times[1] != 30 {
		t.Fatalf("times = %v", times)
	}
}
