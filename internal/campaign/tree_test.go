package campaign

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestCheckpointTreeEquivalence is the tree analogue of
// TestSnapshotMatchesFullReplay: with Explain on, the minimization probes
// and the instrumented re-execution run through the checkpoint tree
// (mid-plan rungs), and every bucket's minimal plan and causal explanation
// must be byte-identical to the full-replay pass — on all five targets, at
// -parallel 1, 2, and 4.
func TestCheckpointTreeEquivalence(t *testing.T) {
	targets := []core.Target{
		workload.Target59848(),
		workload.Target56261(),
		workload.TargetCass398(),
		workload.TargetCass400(),
		workload.TargetCass402(),
	}
	for _, target := range targets {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			if testing.Short() && (target.Name == "cass-op-400" || target.Name == "cass-op-402") {
				t.Skip("short mode: cassandra tree path covered by cass-op-398")
			}
			for _, workers := range []int{1, 2, 4} {
				cfg := Config{Workers: workers, MaxExecutions: 25, Collect: true, KeepGoing: true, Explain: true}
				off, on := runBoth(t, target, func() core.Strategy { return core.NewPlanner() }, cfg)
				cfgOff, cfgOn := cfg, cfg
				cfgOff.Snapshot, cfgOn.Snapshot = false, true
				assertEquivalent(t, off, on, cfgOff, cfgOn)
			}
		})
	}
}

// TestCheckpointTreeActuallyForks guards the tree cross-check against
// passing vacuously: for a detected plan on a snapshotable target, the
// tree must build, hold at least one rung, and serve at least one
// minimization-shaped probe whose result agrees with a full replay.
func TestCheckpointTreeActuallyForks(t *testing.T) {
	target := workload.Target59848()
	seed := int64(1)
	ref, _ := core.ReferenceSeed(target, seed)
	plans := core.NewPlanner().Plans(target, ref)

	var detected core.Plan
	for _, p := range plans {
		if core.RunPlanSeed(target, p, seed).Detected {
			detected = p
			break
		}
	}
	if detected == nil {
		t.Fatal("no plan detects on k8s-59848: tree test is vacuous")
	}
	pt := buildPlanTree(target, detected, seed, ref, nil)
	if pt == nil {
		t.Fatal("buildPlanTree returned nil for a snapshotable target")
	}
	if len(pt.rungs) == 0 {
		t.Fatal("plan tree has no rungs")
	}
	// The base plan itself must be served from the tree's own base run.
	exec, _, ok, _ := pt.run(target, detected, false)
	if !ok {
		t.Fatal("tree did not serve the base plan")
	}
	want := core.RunPlanSeed(target, detected, seed)
	if exec.Detected != want.Detected || !reflect.DeepEqual(exec.Violations, want.Violations) {
		t.Fatalf("tree base execution diverged:\ntree: det=%v viol=%+v\nfull: det=%v viol=%+v",
			exec.Detected, exec.Violations, want.Detected, want.Violations)
	}
	// Probe the minimizer's candidate shapes against full replays.
	probes := []core.Plan{detected}
	if sp, isSeq := detected.(core.SequencePlan); isSeq && len(sp.Plans) > 1 {
		for i := range sp.Plans {
			cand := make([]core.Plan, 0, len(sp.Plans)-1)
			cand = append(cand, sp.Plans[:i]...)
			cand = append(cand, sp.Plans[i+1:]...)
			probes = append(probes, core.SequencePlan{Name: sp.Name + "-min", Plans: cand})
		}
	}
	forked := 0
	for _, q := range probes {
		exec, _, ok, cause := pt.run(target, q, false)
		if !ok {
			if cause != fallbackNone {
				t.Fatalf("probe %s: diagnosable fallback cause %d", q.Describe(), cause)
			}
			continue
		}
		forked++
		want := core.RunPlanSeed(target, q, seed)
		if exec.Detected != want.Detected || !reflect.DeepEqual(exec.Violations, want.Violations) {
			t.Fatalf("probe %s: tree fork diverged from full replay\ntree: det=%v viol=%+v\nfull: det=%v viol=%+v",
				q.Describe(), exec.Detected, exec.Violations, want.Detected, want.Violations)
		}
	}
	if forked == 0 {
		t.Fatal("no probe forked: the tree cross-check would be vacuous")
	}
	t.Logf("forked %d/%d probes from %d rungs", forked, len(probes), len(pt.rungs))
}

// TestSnapshotFallbacksZeroOnCassandra pins the fallback-visibility fix:
// the cassandra-operator targets are snapshotable now, so a snapshot-on
// campaign must report NO diagnosable fallbacks (the stats pointer stays
// nil, keeping artifacts byte-identical to snapshot-off).
func TestSnapshotFallbacksZeroOnCassandra(t *testing.T) {
	targets := []core.Target{workload.TargetCass398()}
	if !testing.Short() {
		targets = append(targets, workload.TargetCass400(), workload.TargetCass402())
	}
	for _, target := range targets {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			cfg := Config{Workers: 2, MaxExecutions: 25, Collect: true, KeepGoing: true, Snapshot: true}
			res := New(cfg).Run(target, core.NewPlanner())
			if res.Stats.SnapshotFallbacks != nil {
				t.Fatalf("snapshot fallbacks on a snapshotable target: %+v", *res.Stats.SnapshotFallbacks)
			}
		})
	}
}

// TestForkAtBuildBoundary is the InstallPending boundary regression: a
// plan whose first perturbation lands exactly at the fork checkpoint's
// instant — the build-boundary sequence band edge — must fork (not fall
// back) and agree byte-for-byte with its full replay. Events carrying
// seq == buildSeq are the last pre-build allocations and must NOT shift;
// the first post-build allocation (the plan's own timer) must.
func TestForkAtBuildBoundary(t *testing.T) {
	target := workload.Target59848()
	seed := int64(1)
	ref, _ := core.ReferenceSeed(target, seed)
	plans := core.NewPlanner().Plans(target, ref)
	fs := buildForkState(target, seed, plans, ref)
	if fs == nil {
		t.Fatal("buildForkState returned nil")
	}
	var base core.StalenessPlan
	found := false
	for _, p := range plans {
		if sp, ok := p.(core.StalenessPlan); ok {
			base = sp
			found = true
			break
		}
	}
	if !found {
		t.Fatal("planner produced no staleness plan")
	}
	// Pin the perturbation to the first checkpoint's capture instant: the
	// plan's At timer is the first post-build allocation, and every pending
	// event at or below buildSeq sits exactly on the no-shift side.
	base.From = fs.checkpoints[0].at
	if base.Until != 0 && base.Until <= base.From {
		base.Until = 0
	}
	exec, sig, ok, cause := runForked(target, base, seed, true, 0, fs)
	if !ok {
		t.Fatalf("build-boundary fork fell back (cause %d)", cause)
	}
	want, wantSig := runGuarded(target, base, seed, true, 0)
	if exec.Detected != want.Detected || sig != wantSig ||
		!reflect.DeepEqual(exec.Violations, want.Violations) {
		t.Fatalf("build-boundary fork diverged from full replay\nfork: det=%v sig=%x viol=%+v\nfull: det=%v sig=%x viol=%+v",
			exec.Detected, sig, exec.Violations, want.Detected, wantSig, want.Violations)
	}
}
