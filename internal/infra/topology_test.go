package infra

import (
	"testing"

	"repro/internal/kubelet"
	"repro/internal/sim"
)

func topoOptions(seed int64) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Nodes = nil
	opts.EnableVolumeController = false
	opts.Topology = &TopologyOptions{
		Racks:              4,
		NodesPerRack:       3,
		DCs:                []string{"dc0", "dc1"},
		ZonesPerDC:         2,
		PerRackAPIAffinity: true,
	}
	return opts
}

// TestTopologyWorldLayout: the generated world places every process —
// workers, apiservers, and the control plane — and serves the latency
// ladder.
func TestTopologyWorldLayout(t *testing.T) {
	c := New(topoOptions(1))
	net := c.World.Network()
	topo := *c.Opts.Topology

	if len(c.Opts.Nodes) != 12 {
		t.Fatalf("generated %d nodes, want 12", len(c.Opts.Nodes))
	}
	// Rack-major naming and per-node locations.
	if c.Opts.Nodes[0] != "r00n00" || c.Opts.Nodes[11] != "r03n02" {
		t.Fatalf("unexpected node names: %v", c.Opts.Nodes)
	}
	loc := net.LocationOf(kubelet.NodeID("r02n01"))
	if loc.Rack != "rack-02" || loc.DC != "dc0" {
		t.Fatalf("r02n01 location = %+v (rack 2 should sit in dc0)", loc)
	}
	// Node objects carry the labels (they feed scheduler spread).
	c.RunFor(500 * sim.Millisecond)
	var labeled int
	for _, n := range c.GroundTruth("nodes") {
		if n.Node != nil && n.Node.Rack != "" && n.Node.DC != "" {
			labeled++
		}
	}
	if labeled != 12 {
		t.Fatalf("%d node objects carry topology labels, want 12", labeled)
	}
	// Per-rack apiserver affinity: apiserver i lives in rack i.
	for i := 0; i < c.Opts.NumAPIServers; i++ {
		loc := net.LocationOf(APIServerID(i))
		if loc.Rack != topo.RackName(i%topo.Racks) {
			t.Errorf("apiserver %d in rack %q, want %q", i, loc.Rack, topo.RackName(i%topo.Racks))
		}
	}
	// Everything else — store, scheduler, admin — is in the control rack.
	for _, id := range []sim.NodeID{StoreID, "scheduler"} {
		if loc := net.LocationOf(id); loc.Rack != "rack-ctrl" {
			t.Errorf("%s in rack %q, want rack-ctrl", id, loc.Rack)
		}
	}
	if net.Topology() == (sim.TopologyLatency{}) {
		t.Fatal("network has no topology latency ladder")
	}
}

// TestTopologyWorldDeterminism: two same-seed builds of a topology world
// run the workload-free horizon to the identical kernel step count, and
// a flat world build is unaffected by the topology code existing (its
// options carry no topology).
func TestTopologyWorldDeterminism(t *testing.T) {
	steps := func() uint64 {
		c := New(topoOptions(3))
		c.RunFor(2 * sim.Second)
		return c.World.Kernel().Steps()
	}
	a, b := steps(), steps()
	if a != b {
		t.Fatalf("same-seed topology worlds diverged: %d vs %d kernel steps", a, b)
	}
}

// TestPerRackAffinityOrdersKubeletUpstreams: with affinity on, each
// kubelet's first upstream is its rack's apiserver.
func TestPerRackAffinityOrdersKubeletUpstreams(t *testing.T) {
	c := New(topoOptions(1))
	// rack 1 prefers apiserver 1 (two apiservers: rack r -> api r%2).
	k := c.Kubelet["r01n00"]
	if k == nil {
		t.Fatal("no kubelet r01n00")
	}
	if got := k.Config().APIServers[0]; got != APIServerID(1) {
		t.Fatalf("r01n00 primary upstream = %s, want %s", got, APIServerID(1))
	}
	if got := c.Kubelet["r02n00"].Config().APIServers[0]; got != APIServerID(0) {
		t.Fatalf("r02n00 primary upstream = %s, want %s", got, APIServerID(0))
	}
}
