package cluster

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	for _, kind := range Kinds() {
		key := Key(kind, "obj-1")
		gotKind, gotName, err := ParseKey(key)
		if err != nil || gotKind != kind || gotName != "obj-1" {
			t.Fatalf("ParseKey(%q) = %v %v %v", key, gotKind, gotName, err)
		}
		if !strings.HasPrefix(key, KindPrefix(kind)) {
			t.Fatalf("key %q lacks kind prefix %q", key, KindPrefix(kind))
		}
	}
}

func TestParseKeyRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "/other/pods/x", "/registry/", "/registry/pods", "/registry/pods/"} {
		if _, _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted", bad)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	pod := NewPod("web-0", "uid-1", PodSpec{NodeName: "k1", Phase: PodRunning, Image: "v2", App: "web"})
	pod.Meta.Labels = map[string]string{"tier": "frontend"}
	pod.Meta.DeletionTimestamp = 42
	pod.Meta.OwnerUID = "owner-1"

	data, err := Encode(pod)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, 77)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.ResourceVersion != 77 {
		t.Fatalf("rv = %d", got.Meta.ResourceVersion)
	}
	if got.Meta.Name != "web-0" || got.Meta.UID != "uid-1" || got.Meta.DeletionTimestamp != 42 {
		t.Fatalf("meta = %+v", got.Meta)
	}
	if got.Pod == nil || got.Pod.NodeName != "k1" || got.Pod.Phase != PodRunning {
		t.Fatalf("pod = %+v", got.Pod)
	}
	if got.Meta.Labels["tier"] != "frontend" {
		t.Fatalf("labels = %v", got.Meta.Labels)
	}
}

func TestEncodeStripsResourceVersion(t *testing.T) {
	pod := NewPod("p", "u", PodSpec{})
	pod.Meta.ResourceVersion = 99
	data, _ := Encode(pod)
	got, _ := Decode(data, 0)
	if got.Meta.ResourceVersion != 0 {
		t.Fatalf("encoded RV leaked: %d", got.Meta.ResourceVersion)
	}
	// The input object is not mutated by Encode.
	if pod.Meta.ResourceVersion != 99 {
		t.Fatal("Encode mutated its argument")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{not json"), 1); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCloneDeep(t *testing.T) {
	cass := NewCassandra("c", "u", CassandraSpec{Replicas: 3, ReadyMembers: []string{"c-0", "c-1"}})
	cass.Meta.Labels = map[string]string{"a": "1"}
	cp := cass.Clone()
	cp.Cassandra.ReadyMembers[0] = "mutated"
	cp.Cassandra.Replicas = 9
	cp.Meta.Labels["a"] = "2"
	if cass.Cassandra.ReadyMembers[0] != "c-0" || cass.Cassandra.Replicas != 3 || cass.Meta.Labels["a"] != "1" {
		t.Fatalf("clone not deep: %+v", cass)
	}

	pvc := NewPVC("v", "u", PVCSpec{OwnerPod: "p", Phase: PVCBound})
	cp2 := pvc.Clone()
	cp2.PVC.Phase = PVCReleased
	if pvc.PVC.Phase != PVCBound {
		t.Fatal("pvc clone not deep")
	}

	var nilObj *Object
	if nilObj.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

func TestTerminating(t *testing.T) {
	pod := NewPod("p", "u", PodSpec{})
	if pod.Terminating() {
		t.Fatal("fresh pod terminating")
	}
	pod.Meta.DeletionTimestamp = 1
	if !pod.Terminating() {
		t.Fatal("marked pod not terminating")
	}
}

func TestUIDGenUnique(t *testing.T) {
	g := NewUIDGen("test")
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		uid := g.Next()
		if seen[uid] {
			t.Fatalf("duplicate uid %q", uid)
		}
		seen[uid] = true
		if !strings.HasPrefix(uid, "test-") {
			t.Fatalf("uid %q missing prefix", uid)
		}
	}
}

func TestPropertyEncodeDecodeAllKinds(t *testing.T) {
	f := func(name string, rv int64, ready bool, replicas uint8) bool {
		if name == "" || strings.Contains(name, "/") {
			return true // names with slashes are not valid objects
		}
		if rv < 0 {
			rv = -rv
		}
		objs := []*Object{
			NewPod(name, "u1", PodSpec{NodeName: "n", Phase: PodPending}),
			NewNode(name, "u2", NodeSpec{Ready: ready, Capacity: int(replicas)}),
			NewPVC(name, "u3", PVCSpec{OwnerPod: "o", Phase: PVCBound, SizeGB: 1}),
			NewCassandra(name, "u4", CassandraSpec{Replicas: int(replicas)}),
			NewRegion(name, "u5", RegionSpec{Owner: "rs", State: RegionOnline}),
		}
		for _, o := range objs {
			data, err := Encode(o)
			if err != nil {
				return false
			}
			got, err := Decode(data, rv)
			if err != nil || got.Meta.Name != name || got.Meta.ResourceVersion != rv ||
				got.Meta.Kind != o.Meta.Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
