// Package scheduler implements the pod scheduler: it watches unbound pods
// and nodes through informer caches and binds pods to nodes.
//
// Kubernetes-56261 (paper §4.2.3) is the target bug: the scheduler misses a
// node-deletion event (an observability gap in H'), keeps the dead node in
// its cache, and falls into a livelock of failed placements because nothing
// ever removes the node from S'. The fixed variant evicts a node from its
// view when binding fails with "node not found" — the upstream fix.
package scheduler

import (
	"errors"
	"sort"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/sim"
)

// ErrNoNodes is returned internally when no candidate node is available.
var ErrNoNodes = errors.New("scheduler: no schedulable nodes")

// errNodeNotFound marks a bind rejected because the target node is gone.
var errNodeNotFound = errors.New("scheduler: bind failed, node not found")

// Config tunes the scheduler.
type Config struct {
	// APIServer is the scheduler's upstream.
	APIServer sim.NodeID
	// EvictUnknownNodes enables the fix for Kubernetes-56261: on a
	// node-not-found bind failure, drop the node from the scheduler's
	// view. With false, the stock buggy behaviour is reproduced.
	EvictUnknownNodes bool
	// RPCTimeout bounds apiserver calls.
	RPCTimeout sim.Duration
}

// DefaultConfig returns settings matching the buggy upstream scheduler.
func DefaultConfig(api sim.NodeID) Config {
	return Config{APIServer: api, RPCTimeout: 200 * sim.Millisecond}
}

// Scheduler is the control-plane scheduler process.
type Scheduler struct {
	id    sim.NodeID
	world *sim.World
	cfg   Config

	conn    *client.Conn
	podInf  *client.Informer
	nodeInf *client.Informer
	queue   *controller.Queue
	down    bool
	epoch   uint64

	// deadNodes are nodes evicted from consideration after bind failures
	// (only populated by the fixed variant).
	deadNodes map[string]bool

	// Metrics.
	Binds        int
	BindFailures int
}

// ID is the scheduler's network identity.
const ID sim.NodeID = "scheduler"

// New wires a scheduler into the world.
func New(w *sim.World, cfg Config) *Scheduler {
	s := &Scheduler{id: ID, world: w, cfg: cfg, deadNodes: make(map[string]bool)}
	w.Network().Register(s.id, s)
	w.AddProcess(s)
	s.boot()
	return s
}

// ID implements sim.Process.
func (s *Scheduler) ID() sim.NodeID { return s.id }

// Crash implements sim.Process.
func (s *Scheduler) Crash() {
	s.down = true
	s.epoch++
	if s.conn != nil {
		s.conn.Reset()
	}
	if s.queue != nil {
		s.queue.Stop()
	}
	s.podInf, s.nodeInf = nil, nil
}

// Restart implements sim.Process.
func (s *Scheduler) Restart() {
	s.down = false
	s.deadNodes = make(map[string]bool)
	s.boot()
}

// HandleMessage implements sim.Handler.
func (s *Scheduler) HandleMessage(m *sim.Message) {
	if s.down || s.conn == nil {
		return
	}
	s.conn.HandleMessage(m)
}

// NodeView returns the node names currently schedulable in the scheduler's
// cache (S'), sorted. Oracles compare this against ground truth.
func (s *Scheduler) NodeView() []string {
	if s.nodeInf == nil {
		return nil
	}
	var out []string
	for _, n := range s.nodeInf.ListCached() {
		if n.Node != nil && n.Node.Ready && !s.deadNodes[n.Meta.Name] {
			out = append(out, n.Meta.Name)
		}
	}
	sort.Strings(out)
	return out
}

func (s *Scheduler) boot() {
	s.epoch++
	s.conn = client.NewConn(s.world, s.id, s.cfg.APIServer, s.cfg.RPCTimeout)
	s.queue = controller.NewQueue(s.world.Kernel(), controller.DefaultQueueConfig(),
		controller.ReconcilerFunc(s.reconcile))
	s.queue.SetOwner(string(s.id))
	s.nodeInf = client.NewInformer(s.conn, cluster.KindNode, client.InformerConfig{
		WatchTimeout: sim.Second,
	})
	s.nodeInf.AddHandler(client.HandlerFuncs{
		DeleteFunc: func(o *cluster.Object) { delete(s.deadNodes, o.Meta.Name) },
	})
	s.podInf = client.NewInformer(s.conn, cluster.KindPod, client.InformerConfig{
		WatchTimeout: sim.Second,
	})
	s.podInf.AddHandler(controller.EnqueueHandler{Queue: s.queue})
	s.nodeInf.Run()
	s.podInf.Run()
}

// reconcile attempts to place one pod.
func (s *Scheduler) reconcile(podName string) (controller.Result, error) {
	pod, ok := s.podInf.Get(podName)
	if !ok || pod.Pod == nil || pod.Terminating() || pod.Pod.NodeName != "" {
		return controller.Result{}, nil
	}
	node, err := s.pickNode()
	if err != nil {
		// No nodes in view: try again later.
		return controller.Result{Requeue: true, RequeueAfter: 50 * sim.Millisecond}, nil
	}
	s.bind(s.epoch, pod, node)
	return controller.Result{}, nil
}

// pickNode chooses the ready cached node with most free capacity,
// breaking ties by topology spread (fewest pods already in the node's
// rack) and then by name. Nodes without a rack label all share one
// neutral rack, so unlabeled worlds order exactly as before the spread
// rule existed. The choice uses only S' — the scheduler cannot know
// about nodes or deletions it never observed.
func (s *Scheduler) pickNode() (string, error) {
	type cand struct {
		name     string
		free     int
		rackLoad int
	}
	used := make(map[string]int)
	for _, p := range s.podInf.ListCached() {
		if p.Pod != nil && p.Pod.NodeName != "" && !p.Terminating() {
			used[p.Pod.NodeName]++
		}
	}
	rackOf := make(map[string]string)
	for _, n := range s.nodeInf.ListCached() {
		if n.Node != nil && n.Node.Rack != "" {
			rackOf[n.Meta.Name] = n.Node.Rack
		}
	}
	rackLoad := make(map[string]int)
	for node, count := range used {
		if rack, ok := rackOf[node]; ok {
			rackLoad[rack] += count
		}
	}
	var cands []cand
	for _, n := range s.nodeInf.ListCached() {
		if n.Node == nil || !n.Node.Ready || s.deadNodes[n.Meta.Name] {
			continue
		}
		free := n.Node.Capacity - used[n.Meta.Name]
		if free > 0 {
			cands = append(cands, cand{n.Meta.Name, free, rackLoad[n.Node.Rack]})
		}
	}
	if len(cands) == 0 {
		return "", ErrNoNodes
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].free != cands[j].free {
			return cands[i].free > cands[j].free
		}
		if cands[i].rackLoad != cands[j].rackLoad {
			return cands[i].rackLoad < cands[j].rackLoad
		}
		return cands[i].name < cands[j].name
	})
	return cands[0].name, nil
}

// bind validates the node's existence (the binding subresource check) and
// writes the assignment.
func (s *Scheduler) bind(epoch uint64, pod *cluster.Object, node string) {
	s.conn.Get(cluster.KindNode, node, true, func(_ *cluster.Object, found bool, err error) {
		if s.down || epoch != s.epoch {
			return
		}
		if err != nil {
			s.BindFailures++
			s.queue.AddAfter(pod.Meta.Name, 50*sim.Millisecond)
			return
		}
		if !found {
			// "node not found": the node is gone but our cache does not
			// know. The buggy scheduler retries forever against the same
			// view; the fixed one evicts the node (Kubernetes-56261 fix).
			s.BindFailures++
			if s.cfg.EvictUnknownNodes {
				s.deadNodes[node] = true
			}
			s.queue.AddAfter(pod.Meta.Name, 50*sim.Millisecond)
			return
		}
		bound := pod.Clone()
		bound.Pod.NodeName = node
		bound.Pod.Phase = cluster.PodScheduled
		s.conn.Update(bound, func(_ *cluster.Object, err error) {
			if s.down || epoch != s.epoch {
				return
			}
			if err != nil {
				s.BindFailures++
				s.queue.AddAfter(pod.Meta.Name, 50*sim.Millisecond)
				return
			}
			s.Binds++
		})
	})
}
