// Package corpus is the fleet's persistent cross-campaign memory: an
// on-disk, versioned record of what every past campaign already paid
// for, keyed by (target, strategy). Three kinds of knowledge persist:
//
//   - coverage signature classes: every execution signature observed,
//     so guided scheduling in later campaigns starves plans predicted
//     to re-hash into known coverage;
//   - detection buckets: each failure bucket's signature, oracles, and
//     example plan ID (plus its minimized form when one was computed),
//     so later campaigns re-confirm known failures first — a built-in
//     regression suite that grows itself;
//   - healthy plan outcomes: the exact signature each non-violating,
//     non-broken plan execution produced, per world seed, so resumed
//     campaigns skip plans whose outcome is already known.
//
// Soundness rests on the simulation's determinism: a recorded outcome
// is only reused while the seed's reference-trace state hash still
// matches (campaign.CoverageSeed.RefHash), so any change to the world —
// code, workload, horizon — invalidates that seed's entries instead of
// silently serving stale knowledge.
//
// Layout: <dir>/v1/<target>__<strategy>.json, one file per cell,
// written atomically (temp file + rename) with deterministic content
// (sorted keys and slices), so corpus diffs are reviewable and
// concurrent readers never observe a torn file. The v1 path component
// is the schema version; an incompatible future format moves to v2
// rather than breaking old files in place.
package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/campaign"
)

// Version is the corpus schema version this package reads and writes.
const Version = 1

// Bucket is one remembered failure bucket.
type Bucket struct {
	Signature string   `json:"signature"`
	Oracles   []string `json:"oracles"`
	// ExamplePlanID is the strategy-stable plan coordinate regression
	// checks re-run; ExampleSeed is the world seed it reproduced under.
	ExamplePlanID string `json:"example_plan_id"`
	ExampleSeed   int64  `json:"example_seed"`
	Detected      bool   `json:"detected"`
	// Count accumulates how many executions have landed in this bucket
	// across all recorded campaigns.
	Count int `json:"count"`
	// MinimalPlanID is the minimized reproducer, when an explain pass
	// computed one.
	MinimalPlanID string `json:"minimal_plan_id,omitempty"`
}

// File is the on-disk form of one cell's corpus.
type File struct {
	Version  int    `json:"version"`
	Target   string `json:"target"`
	Strategy string `json:"strategy"`
	// RefHash maps world seed → the reference-trace state hash its
	// entries were recorded under (the validity guard).
	RefHash map[int64]string `json:"ref_hash,omitempty"`
	// Buckets are the remembered failure buckets, detected first, then
	// by signature — the regression order.
	Buckets []Bucket `json:"buckets,omitempty"`
	// Signatures is the sorted set of every coverage signature observed.
	Signatures []string `json:"signatures,omitempty"`
	// PlanSigs maps seed → plan ID → signature for executions that
	// completed healthy (not failed/hung) with zero violations — the
	// skip-eligible set.
	PlanSigs map[int64]map[string]string `json:"plan_sigs,omitempty"`
}

func cellPath(dir, target, strategy string) string {
	return filepath.Join(dir, fmt.Sprintf("v%d", Version), target+"__"+strategy+".json")
}

// Load reads one cell's corpus and converts it to the engine's
// CoverageSeed form. A cell that was never recorded returns (nil, nil)
// — the cold-start case, not an error.
func Load(dir, target, strategy string) (*campaign.CoverageSeed, error) {
	f, err := read(dir, target, strategy)
	if err != nil || f == nil {
		return nil, err
	}
	cs := &campaign.CoverageSeed{
		RefHash:         f.RefHash,
		KnownSignatures: f.Signatures,
		PlanSigs:        f.PlanSigs,
	}
	seen := map[string]bool{}
	for _, b := range f.Buckets {
		if b.ExamplePlanID == "" || seen[b.ExamplePlanID] {
			continue
		}
		seen[b.ExamplePlanID] = true
		cs.Regression = append(cs.Regression, b.ExamplePlanID)
	}
	return cs, nil
}

func read(dir, target, strategy string) (*File, error) {
	data, err := os.ReadFile(cellPath(dir, target, strategy))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("corpus: read %s/%s: %w", target, strategy, err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("corpus: parse %s/%s: %w", target, strategy, err)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("corpus: %s/%s has version %d, want %d", target, strategy, f.Version, Version)
	}
	return &f, nil
}

// Record merges one finished campaign's results into the cell's corpus
// and writes it back atomically. Per seed, entries recorded under a
// different reference hash are replaced (the old world no longer
// exists); under a matching hash they are merged, so plans the campaign
// skipped this time stay remembered — skipping must not forget.
func Record(dir, target, strategy string, res campaign.Result) error {
	f, err := read(dir, target, strategy)
	if err != nil {
		return err
	}
	if f == nil {
		f = &File{Version: Version, Target: target, Strategy: strategy}
	}
	if f.RefHash == nil {
		f.RefHash = map[int64]string{}
	}
	if f.PlanSigs == nil {
		f.PlanSigs = map[int64]map[string]string{}
	}

	for _, sr := range res.Seeds {
		if sr.RefHash == "" {
			continue // uninstrumented historical result; nothing to guard
		}
		if old, ok := f.RefHash[sr.Seed]; ok && old != sr.RefHash {
			delete(f.PlanSigs, sr.Seed)
		}
		f.RefHash[sr.Seed] = sr.RefHash
	}

	sigs := map[string]bool{}
	for _, s := range f.Signatures {
		sigs[s] = true
	}
	for _, out := range res.Outcomes {
		if out.Signature != "" {
			sigs[out.Signature] = true
		}
		if out.Index < 0 || out.Failed || out.Hung || len(out.Violations) > 0 || out.Signature == "" {
			continue // reference runs and non-healthy outcomes are not skip-eligible
		}
		m := f.PlanSigs[out.Seed]
		if m == nil {
			m = map[string]string{}
			f.PlanSigs[out.Seed] = m
		}
		m[out.Plan] = out.Signature
	}
	f.Signatures = make([]string, 0, len(sigs))
	for s := range sigs {
		f.Signatures = append(f.Signatures, s)
	}
	sort.Strings(f.Signatures)

	idxBySig := map[string]int{}
	for i := range f.Buckets {
		idxBySig[f.Buckets[i].Signature] = i
	}
	var added []Bucket
	for _, b := range res.Buckets {
		if i, ok := idxBySig[b.Signature]; ok {
			f.Buckets[i].Count += b.Count
			if f.Buckets[i].MinimalPlanID == "" {
				f.Buckets[i].MinimalPlanID = b.MinimalPlanID
			}
			continue
		}
		added = append(added, Bucket{
			Signature:     b.Signature,
			Oracles:       b.Oracles,
			ExamplePlanID: b.ExamplePlanID,
			ExampleSeed:   b.ExampleSeed,
			Detected:      b.Detected,
			Count:         b.Count,
			MinimalPlanID: b.MinimalPlanID,
		})
	}
	f.Buckets = append(f.Buckets, added...)
	sort.SliceStable(f.Buckets, func(i, j int) bool {
		if f.Buckets[i].Detected != f.Buckets[j].Detected {
			return f.Buckets[i].Detected
		}
		return f.Buckets[i].Signature < f.Buckets[j].Signature
	})

	return write(dir, target, strategy, f)
}

// write persists the file atomically: full marshal to a temp file in
// the destination directory, then rename over the old version.
func write(dir, target, strategy string, f *File) error {
	path := cellPath(dir, target, strategy)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("corpus: mkdir: %w", err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: marshal %s/%s: %w", target, strategy, err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".corpus-*")
	if err != nil {
		return fmt.Errorf("corpus: temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: rename: %w", err)
	}
	return nil
}
